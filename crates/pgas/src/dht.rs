//! The distributed hash table — the heart of HipMer (§7 of the paper:
//! "distributed hash tables lie in the heart of HipMer and the main
//! operations on them are irregular lookups").
//!
//! Keys are assigned to an **owner rank** by a placement function over the
//! key's 64-bit hash; each rank's partition is one shard. Any rank may read
//! or write any key (one-sided semantics): the access is executed directly
//! against the owner's shard, and the *acting* rank's [`CommStats`] records
//! whether it was local, on-node, or off-node — exactly the accounting
//! Tables 1–2 of the paper report. Work that lands in a shard on behalf of
//! other ranks is additionally tallied as `service_ops` against the owner,
//! which is where heavy-hitter load imbalance (Fig. 6) becomes visible.
//!
//! [`CommStats`]: crate::stats::CommStats

use crate::metrics;
use crate::team::RankCtx;
use crate::topology::Topology;
use crate::trace;
use hipmer_dna::KmerBuildHasher;
use hipmer_sketch::MisraGries;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How keys map to owner ranks.
#[derive(Clone)]
pub enum Placement {
    /// Uniform: `owner = hash % ranks`. The default for every table.
    Cyclic,
    /// A custom mapping from key hash to owner rank — the hook the oracle
    /// partitioning of §3.2 plugs into.
    Custom(Arc<dyn Fn(u64) -> usize + Send + Sync>),
}

impl std::fmt::Debug for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Cyclic => write!(f, "Placement::Cyclic"),
            Placement::Custom(_) => write!(f, "Placement::Custom(..)"),
        }
    }
}

type Shard<K, V> = Mutex<HashMap<K, V, KmerBuildHasher>>;

/// A hash table partitioned across the virtual ranks of a [`Topology`].
pub struct DistHashMap<K, V> {
    topo: Topology,
    placement: Placement,
    shards: Vec<Shard<K, V>>,
    /// Remote-landed updates serviced by each shard's owner.
    service: Vec<AtomicU64>,
    hasher: KmerBuildHasher,
    /// Logical payload bytes per transferred entry (key + value estimate).
    entry_bytes: u64,
    /// Misra–Gries summary over the key hashes of service operations, for
    /// naming the heavy hitters behind `service_ops` skew. `None` (free)
    /// unless [`trace::hotkey_capacity`] was nonzero at construction or
    /// tracking was requested via [`DistHashMap::with_hot_key_tracking`].
    hot_keys: Option<Mutex<MisraGries<u64>>>,
}

impl<K, V> DistHashMap<K, V>
where
    K: Hash + Eq + Send,
    V: Send,
{
    /// An empty table over `topo` with cyclic placement.
    pub fn new(topo: Topology) -> Self {
        Self::with_placement(topo, Placement::Cyclic)
    }

    /// An empty table with an explicit placement function.
    pub fn with_placement(topo: Topology, placement: Placement) -> Self {
        let ranks = topo.ranks();
        let hot_keys = match trace::hotkey_capacity() {
            0 => None,
            cap => Some(Mutex::new(MisraGries::new(cap))),
        };
        DistHashMap {
            topo,
            placement,
            shards: (0..ranks).map(|_| Mutex::new(HashMap::default())).collect(),
            service: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            hasher: KmerBuildHasher::default(),
            entry_bytes: (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64,
            hot_keys,
        }
    }

    /// Enable hot-key tracking on this table with an explicit Misra–Gries
    /// capacity, regardless of the process-global setting.
    pub fn with_hot_key_tracking(mut self, capacity: usize) -> Self {
        self.hot_keys = Some(Mutex::new(MisraGries::new(capacity)));
        self
    }

    /// Observe one service operation on `key` in the hot-key summary.
    #[inline]
    fn track_hot_key(&self, key: &K) {
        if let Some(mg) = &self.hot_keys {
            mg.lock().observe(self.key_hash(key));
        }
    }

    /// The `top_k` heaviest key hashes seen by service operations, as
    /// `(key_hash, estimated_count)` sorted by descending count. Empty when
    /// tracking is off. Counts are Misra–Gries lower bounds.
    pub fn hot_keys(&self, top_k: usize) -> Vec<(u64, u64)> {
        match &self.hot_keys {
            None => Vec::new(),
            Some(mg) => {
                let mut all = mg.lock().heavy_hitters(1);
                all.truncate(top_k);
                all
            }
        }
    }

    /// The topology this table is partitioned over.
    #[inline]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Logical payload bytes accounted per transferred entry (key + value
    /// size estimate). Batched reads and writes charge `n * entry_bytes`
    /// per shipped buffer so bandwidth totals match the fine-grained path.
    #[inline]
    pub fn entry_bytes(&self) -> u64 {
        self.entry_bytes
    }

    /// The 64-bit hash used for placement (stable across ranks and runs).
    #[inline]
    pub fn key_hash(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// The rank owning `key`.
    #[inline]
    pub fn owner(&self, key: &K) -> usize {
        let h = self.key_hash(key);
        match &self.placement {
            Placement::Cyclic => (h % self.topo.ranks() as u64) as usize,
            Placement::Custom(f) => {
                let r = f(h);
                debug_assert!(r < self.topo.ranks());
                r
            }
        }
    }

    /// Record one one-sided access by `ctx.rank` against `owner`'s shard
    /// (subject to fault injection when the rank's team carries a
    /// [`crate::FaultPlan`]).
    #[inline]
    fn account(&self, ctx: &mut RankCtx, owner: usize) {
        ctx.comm(&self.topo, owner, self.entry_bytes);
    }

    /// Take `owner`'s shard lock. With the metrics registry enabled, a
    /// failed `try_lock` first counts one `pgas/dht/lock_contention`
    /// tick before blocking — the simulator's stand-in for the remote
    /// atomics HipMer's UPC tables contend on. Disabled cost: one relaxed
    /// atomic load on top of the lock itself.
    #[inline]
    fn lock_shard(
        &self,
        owner: usize,
    ) -> parking_lot::MutexGuard<'_, HashMap<K, V, KmerBuildHasher>> {
        let shard = &self.shards[owner];
        if metrics::is_enabled() {
            if let Some(guard) = shard.try_lock() {
                return guard;
            }
            metrics::counter_add("pgas/dht/lock_contention", 1);
        }
        shard.lock()
    }

    /// One-sided read. Returns a clone of the value.
    pub fn get(&self, ctx: &mut RankCtx, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let owner = self.owner(key);
        self.account(ctx, owner);
        self.lock_shard(owner).get(key).cloned()
    }

    /// One-sided existence check.
    pub fn contains(&self, ctx: &mut RankCtx, key: &K) -> bool {
        let owner = self.owner(key);
        self.account(ctx, owner);
        self.lock_shard(owner).contains_key(key)
    }

    /// One-sided write; returns the previous value if any. Counts a service
    /// op at the owner.
    pub fn insert(&self, ctx: &mut RankCtx, key: K, value: V) -> Option<V> {
        let owner = self.owner(&key);
        self.account(ctx, owner);
        self.service[owner].fetch_add(1, Ordering::Relaxed);
        self.track_hot_key(&key);
        self.lock_shard(owner).insert(key, value)
    }

    /// One-sided upsert: create the entry with `default` if absent, then
    /// apply `f`. This is the primitive k-mer counting and link generation
    /// are built on.
    pub fn update<D, F>(&self, ctx: &mut RankCtx, key: K, default: D, f: F)
    where
        D: FnOnce() -> V,
        F: FnOnce(&mut V),
    {
        let owner = self.owner(&key);
        self.account(ctx, owner);
        self.service[owner].fetch_add(1, Ordering::Relaxed);
        self.track_hot_key(&key);
        let mut shard = self.lock_shard(owner);
        f(shard.entry(key).or_insert_with(default));
    }

    /// One-sided read-modify-write with full access to the slot (present or
    /// not). Used by the traversal's claim protocol.
    pub fn with_mut<T, F>(&self, ctx: &mut RankCtx, key: &K, f: F) -> T
    where
        F: FnOnce(Option<&mut V>) -> T,
    {
        let owner = self.owner(key);
        self.account(ctx, owner);
        let mut shard = self.lock_shard(owner);
        f(shard.get_mut(key))
    }

    /// One-sided removal.
    pub fn remove(&self, ctx: &mut RankCtx, key: &K) -> Option<V> {
        let owner = self.owner(key);
        self.account(ctx, owner);
        self.lock_shard(owner).remove(key)
    }

    /// Answer a batch of lookups that arrived as **one** multi-get message
    /// (see [`crate::LookupBatch`] / [`multi_get`](Self::multi_get)). The
    /// caller has already accounted the message; like
    /// [`get`](Self::get) — and unlike [`merge_batch`](Self::merge_batch) —
    /// this tallies **no** service ops and does not touch the hot-key
    /// summary, so converting a loop of `get`s into one `fetch_batch` leaves
    /// every counter except the message count unchanged.
    ///
    /// Every key must be owned by `dest` (checked in debug builds). Results
    /// come back in key order; the owner's shard lock is taken once for the
    /// whole batch — the read-side analogue of the aggregated-store lock
    /// saving documented in [`crate::agg`].
    pub fn fetch_batch(&self, dest: usize, keys: &[&K]) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let shard = self.lock_shard(dest);
        keys.iter()
            .map(|k| {
                debug_assert_eq!(self.owner(k), dest, "fetch_batch key not owned by dest");
                shard.get(*k).cloned()
            })
            .collect()
    }

    /// Batched one-sided read: group `keys` by owner, ship **one** message
    /// per distinct owner (bytes accounted in full — `group_len *
    /// entry_bytes` — mirroring [`crate::Outbox`] semantics), and return the
    /// values in input-key order.
    ///
    /// Results are byte-identical to `keys.iter().map(|k| self.get(ctx,
    /// k))`; only the accounting differs: per-message latency is divided by
    /// the group size, bandwidth is not saved, and
    /// [`CommStats::lookup_batches`](crate::CommStats::lookup_batches) is
    /// incremented once per shipped group. For streaming call sites that
    /// cannot collect keys up front, use [`crate::LookupBatch`].
    pub fn multi_get(&self, ctx: &mut RankCtx, keys: &[K]) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let ranks = self.topo.ranks();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); ranks];
        for (i, k) in keys.iter().enumerate() {
            groups[self.owner(k)].push(i);
        }
        let mut out: Vec<Option<V>> = Vec::with_capacity(keys.len());
        out.resize_with(keys.len(), || None);
        for (dest, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            ctx.comm(&self.topo, dest, group.len() as u64 * self.entry_bytes);
            ctx.stats.lookup_batches += 1;
            let batch_keys: Vec<&K> = group.iter().map(|&i| &keys[i]).collect();
            for (i, v) in group.into_iter().zip(self.fetch_batch(dest, &batch_keys)) {
                out[i] = v;
            }
        }
        out
    }

    /// Apply a batch of merged updates that arrived as **one** aggregated
    /// message (see [`crate::AggregatingStores`]). The caller has already
    /// accounted the message; this only tallies the owner's service work.
    pub fn merge_batch<M>(&self, dest: usize, entries: Vec<(K, V)>, merge: M)
    where
        M: Fn(&mut V, V),
    {
        self.service[dest].fetch_add(entries.len() as u64, Ordering::Relaxed);
        if self.hot_keys.is_some() {
            for (k, _) in &entries {
                self.track_hot_key(k);
            }
        }
        let mut shard = self.lock_shard(dest);
        for (k, v) in entries {
            match shard.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), v),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
    }

    /// As [`merge_batch`](Self::merge_batch), but entries whose key is not
    /// already present are **dropped** instead of inserted. This is the
    /// second-pass counting semantics of §3.1: only k-mers the Bloom filter
    /// admitted (seen at least twice) have table entries; votes for
    /// anything else are discarded.
    pub fn merge_batch_existing<M>(&self, dest: usize, entries: Vec<(K, V)>, merge: M)
    where
        M: Fn(&mut V, V),
    {
        self.service[dest].fetch_add(entries.len() as u64, Ordering::Relaxed);
        if self.hot_keys.is_some() {
            for (k, _) in &entries {
                self.track_hot_key(k);
            }
        }
        let mut shard = self.lock_shard(dest);
        for (k, v) in entries {
            if let Some(slot) = shard.get_mut(&k) {
                merge(slot, v);
            }
        }
    }

    /// Total entries across all shards (collective metadata; not counted).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Iterate the acting rank's own shard, counting one local op per entry
    /// (each rank post-processing its local buckets is a standard phase in
    /// the paper: link assessment, depth summation, ...).
    pub fn fold_local<T, F>(&self, ctx: &mut RankCtx, init: T, mut f: F) -> T
    where
        F: FnMut(T, &K, &V) -> T,
    {
        let shard = self.shards[ctx.rank].lock();
        ctx.stats.local_ops += shard.len() as u64;
        let mut acc = init;
        for (k, v) in shard.iter() {
            acc = f(acc, k, v);
        }
        acc
    }

    /// Snapshot the acting rank's shard as (key, value) pairs, charging
    /// only compute (a linear scan of local memory, not hash lookups).
    /// Used for seed scans where the per-entry cost is a flag check, not a
    /// table operation.
    pub fn snapshot_local(&self, ctx: &mut RankCtx) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let shard = self.shards[ctx.rank].lock();
        ctx.stats.compute(shard.len() as u64);
        shard.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Drain the acting rank's shard into a vector (counts local ops).
    pub fn drain_local(&self, ctx: &mut RankCtx) -> Vec<(K, V)> {
        let mut shard = self.shards[ctx.rank].lock();
        ctx.stats.local_ops += shard.len() as u64;
        shard.drain().collect()
    }

    /// Mutate every entry of the acting rank's shard in place.
    pub fn for_each_local_mut<F>(&self, ctx: &mut RankCtx, mut f: F)
    where
        F: FnMut(&K, &mut V),
    {
        let mut shard = self.shards[ctx.rank].lock();
        ctx.stats.local_ops += shard.len() as u64;
        for (k, v) in shard.iter_mut() {
            f(k, v);
        }
    }

    /// Retain only entries satisfying the predicate in the acting rank's
    /// shard (used to discard below-threshold k-mers after counting).
    pub fn retain_local<F>(&self, ctx: &mut RankCtx, mut f: F)
    where
        F: FnMut(&K, &mut V) -> bool,
    {
        let mut shard = self.shards[ctx.rank].lock();
        ctx.stats.local_ops += shard.len() as u64;
        shard.retain(|k, v| f(k, v));
    }

    /// Move each shard owner's accumulated service work into the per-rank
    /// stats vector collected from a finished phase. Resets the counters.
    ///
    /// With the metrics registry enabled, this end-of-phase collective also
    /// publishes table occupancy: the `pgas/dht/entries` gauge keeps the
    /// high-water total entry count across all tables, and
    /// `pgas/dht/load_factor_max` the worst max-shard/mean-shard ratio
    /// observed (1.0 = perfectly balanced placement; the paper's heavy
    /// hitters show up here before they show up in `service_ops` skew).
    pub fn drain_service_into(&self, stats: &mut [crate::CommStats]) {
        assert_eq!(stats.len(), self.topo.ranks());
        for (rank, c) in self.service.iter().enumerate() {
            stats[rank].service_ops += c.swap(0, Ordering::Relaxed);
        }
        if metrics::is_enabled() {
            let sizes = self.shard_sizes();
            let total: usize = sizes.iter().sum();
            metrics::gauge_max("pgas/dht/entries", total as f64);
            if total > 0 {
                let max = sizes.iter().copied().max().unwrap_or(0) as f64;
                let mean = total as f64 / sizes.len().max(1) as f64;
                metrics::gauge_max("pgas/dht/load_factor_max", max / mean);
            }
        }
    }

    /// Clone every entry across all shards, **without** touching any
    /// counters — a collective metadata operation used by the checkpoint
    /// writer, which prices the traffic as checkpoint I/O instead.
    pub fn snapshot_entries(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            out.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Bulk-load entries into their owner shards, **without** touching any
    /// counters or service tallies — the checkpoint-restore path, whose I/O
    /// cost is accounted by the resume machinery as a `checkpoint/load-*`
    /// phase instead of as table traffic.
    pub fn preload(&self, entries: impl IntoIterator<Item = (K, V)>) {
        for (k, v) in entries {
            let owner = self.owner(&k);
            self.shards[owner].lock().insert(k, v);
        }
    }

    /// Consume the table, yielding every entry (for tests / final output).
    pub fn into_entries(self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in self.shards {
            out.extend(shard.into_inner());
        }
        out
    }

    /// Snapshot of the per-rank shard sizes (load-balance diagnostics).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rank: usize, topo: Topology) -> RankCtx {
        RankCtx::new(rank, topo)
    }

    #[test]
    fn insert_get_roundtrip() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, String> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        assert_eq!(dht.insert(&mut c, 42, "hello".into()), None);
        assert_eq!(dht.get(&mut c, &42), Some("hello".into()));
        assert_eq!(dht.get(&mut c, &43), None);
        assert!(dht.contains(&mut c, &42));
        assert_eq!(dht.len(), 1);
    }

    #[test]
    fn owner_is_stable_and_in_range() {
        let topo = Topology::new(7, 3);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        for key in 0..1000u64 {
            let o = dht.owner(&key);
            assert!(o < 7);
            assert_eq!(o, dht.owner(&key));
        }
    }

    #[test]
    fn comm_accounting_matches_owner_locality() {
        let topo = Topology::new(48, 24);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        // Find keys owned locally / on node 0 / off node.
        let local_key = (0..).find(|k| dht.owner(k) == 0).unwrap();
        let onnode_key = (0..).find(|k| (1..24).contains(&dht.owner(k))).unwrap();
        let offnode_key = (0..).find(|k| dht.owner(k) >= 24).unwrap();
        dht.insert(&mut c, local_key, 1);
        dht.insert(&mut c, onnode_key, 2);
        dht.insert(&mut c, offnode_key, 3);
        assert_eq!(c.stats.local_ops, 1);
        assert_eq!(c.stats.onnode_msgs, 1);
        assert_eq!(c.stats.offnode_msgs, 1);
    }

    #[test]
    fn update_upserts() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(1, topo);
        dht.update(&mut c, 5, || 0, |v| *v += 10);
        dht.update(&mut c, 5, || 0, |v| *v += 10);
        assert_eq!(dht.get(&mut c, &5), Some(20));
    }

    #[test]
    fn service_ops_attributed_to_owner() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        // Insert many keys; service ops land at owners, not at rank 0.
        for k in 0..100 {
            dht.insert(&mut c, k, 0);
        }
        let mut stats = vec![crate::CommStats::new(); 4];
        dht.drain_service_into(&mut stats);
        let total: u64 = stats.iter().map(|s| s.service_ops).sum();
        assert_eq!(total, 100);
        // And the counters reset.
        let mut again = vec![crate::CommStats::new(); 4];
        dht.drain_service_into(&mut again);
        assert!(again.iter().all(|s| s.service_ops == 0));
    }

    #[test]
    fn fold_and_drain_local_only_touch_own_shard() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c0 = ctx(0, topo);
        for k in 0..200 {
            dht.insert(&mut c0, k, 1);
        }
        let mut seen = 0usize;
        for rank in 0..4 {
            let mut c = ctx(rank, topo);
            seen += dht.fold_local(&mut c, 0usize, |acc, _, _| acc + 1);
        }
        assert_eq!(seen, 200);

        let mut c2 = ctx(2, topo);
        let drained = dht.drain_local(&mut c2);
        assert!(drained.iter().all(|(k, _)| dht.owner(k) == 2));
        assert_eq!(dht.len(), 200 - drained.len());
    }

    #[test]
    fn retain_local_filters() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        for k in 0..100 {
            dht.insert(&mut c, k, (k % 10) as u32);
        }
        for rank in 0..2 {
            let mut cr = ctx(rank, topo);
            dht.retain_local(&mut cr, |_, v| *v >= 5);
        }
        assert_eq!(dht.len(), 50);
    }

    #[test]
    fn custom_placement_is_respected() {
        let topo = Topology::new(4, 2);
        // Everything on rank 3.
        let placement = Placement::Custom(Arc::new(|_h| 3));
        let dht: DistHashMap<u64, u32> = DistHashMap::with_placement(topo, placement);
        let mut c = ctx(0, topo);
        for k in 0..50 {
            dht.insert(&mut c, k, 0);
        }
        assert_eq!(dht.shard_sizes(), vec![0, 0, 0, 50]);
    }

    #[test]
    fn merge_batch_applies_and_counts_service() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        dht.insert(&mut c, 1000, 5);
        let dest = dht.owner(&1000);
        dht.merge_batch(dest, vec![(1000, 7)], |a, b| *a += b);
        assert_eq!(dht.get(&mut c, &1000), Some(12));
        let mut stats = vec![crate::CommStats::new(); 2];
        dht.drain_service_into(&mut stats);
        assert_eq!(stats[dest].service_ops, 2); // insert + merged entry
    }

    #[test]
    fn with_mut_sees_missing_and_present() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        assert!(dht.with_mut(&mut c, &9, |slot| slot.is_none()));
        dht.insert(&mut c, 9, 1);
        dht.with_mut(&mut c, &9, |slot| *slot.unwrap() = 99);
        assert_eq!(dht.get(&mut c, &9), Some(99));
    }

    #[test]
    fn hot_key_tracking_names_the_heavy_hitter() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo).with_hot_key_tracking(16);
        let mut c = ctx(0, topo);
        // One ultra-frequent key among a uniform background.
        for i in 0..500u64 {
            dht.update(&mut c, 7777, || 0, |v| *v += 1);
            dht.update(&mut c, i, || 0, |v| *v += 1);
        }
        let hot = dht.hot_keys(3);
        assert!(!hot.is_empty());
        assert_eq!(hot[0].0, dht.key_hash(&7777));
        assert!(hot[0].1 > 100, "count {} too low", hot[0].1);
        for w in hot.windows(2) {
            assert!(w[0].1 >= w[1].1, "sorted descending");
        }
    }

    #[test]
    fn hot_key_tracking_off_by_default_and_free() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        for i in 0..100u64 {
            dht.insert(&mut c, i % 3, 0);
        }
        assert!(dht.hot_keys(10).is_empty());
    }

    #[test]
    fn snapshot_and_preload_bypass_counters() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        for k in 0..100 {
            dht.insert(&mut c, k, (k * 2) as u32);
        }
        let mut entries = dht.snapshot_entries();
        entries.sort_unstable();
        assert_eq!(entries.len(), 100);

        let restored: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c2 = ctx(1, topo);
        restored.preload(entries.clone());
        // No accesses, no service ops were recorded by either operation.
        assert_eq!(c2.stats.total_accesses(), 0);
        let mut stats = vec![crate::CommStats::new(); 4];
        restored.drain_service_into(&mut stats);
        assert!(stats.iter().all(|s| s.service_ops == 0));
        // But the data round-tripped, landing on the same owners.
        assert_eq!(restored.shard_sizes(), dht.shard_sizes());
        assert_eq!(restored.get(&mut c2, &7), Some(14));
    }

    #[test]
    fn metrics_capture_occupancy_and_contention() {
        let _guard = metrics::TEST_LOCK.lock().unwrap();
        metrics::reset();
        metrics::enable();

        let topo = Topology::new(4, 2);
        // All keys on rank 3: max/mean load factor = 4.0.
        let placement = Placement::Custom(Arc::new(|_h| 3));
        let dht: DistHashMap<u64, u32> = DistHashMap::with_placement(topo, placement);
        let mut c = ctx(0, topo);
        for k in 0..80 {
            dht.insert(&mut c, k, 0);
        }
        let mut stats = vec![crate::CommStats::new(); 4];
        dht.drain_service_into(&mut stats);

        // Contention: hold shard 3's lock while another thread inserts.
        // The insert's try_lock fails and counts contention *before*
        // blocking, so we can wait on the counter and then release.
        let contention = || {
            metrics::snapshot().iter().find_map(|m| match m {
                metrics::MetricSnapshot::Counter(n, v) if n == "pgas/dht/lock_contention" => {
                    Some(*v)
                }
                _ => None,
            })
        };
        let held = dht.shards[3].lock();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut c2 = RankCtx::new(1, topo);
                dht.insert(&mut c2, 0, 9); // blocks until `held` drops
            });
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while contention().unwrap_or(0) == 0 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "blocked insert never counted contention"
                );
                std::thread::yield_now();
            }
            drop(held);
        });

        let snap = metrics::snapshot();
        let find = |name: &str| snap.iter().find(|m| m.name() == name).cloned();
        match find("pgas/dht/entries") {
            Some(metrics::MetricSnapshot::Gauge(_, v)) => assert_eq!(v, 80.0),
            other => panic!("missing entries gauge: {other:?}"),
        }
        match find("pgas/dht/load_factor_max") {
            Some(metrics::MetricSnapshot::Gauge(_, v)) => {
                assert!((v - 4.0).abs() < 1e-9, "all-on-one-rank placement: {v}")
            }
            other => panic!("missing load factor gauge: {other:?}"),
        }
        match find("pgas/dht/lock_contention") {
            Some(metrics::MetricSnapshot::Counter(_, n)) => {
                assert!(n >= 1, "blocked insert must count contention")
            }
            other => panic!("missing contention counter: {other:?}"),
        }

        metrics::disable();
        metrics::reset();
    }

    #[test]
    fn cyclic_placement_is_roughly_balanced() {
        let topo = Topology::new(16, 8);
        let dht: DistHashMap<u64, ()> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        for k in 0..16_000u64 {
            dht.insert(&mut c, k, ());
        }
        let sizes = dht.shard_sizes();
        let expect = 1000.0;
        for (rank, &s) in sizes.iter().enumerate() {
            let dev = (s as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "rank {rank} has {s} entries (expect ~1000)");
        }
    }
}
