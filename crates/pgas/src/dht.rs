//! The distributed hash table — the heart of HipMer (§7 of the paper:
//! "distributed hash tables lie in the heart of HipMer and the main
//! operations on them are irregular lookups").
//!
//! Keys are assigned to an **owner rank** by a placement function over the
//! key's 64-bit hash; each rank's partition is further split into
//! [`SUB_SHARDS_PER_RANK`] independently locked **sub-shards** selected by
//! the hash's high bits, so concurrent OS workers servicing different keys
//! of the same owner do not serialize on one lock (see DESIGN.md §12).
//! Any rank may read or write any key (one-sided semantics): the access is
//! executed directly against the owner's partition, and the *acting* rank's
//! [`CommStats`] records whether it was local, on-node, or off-node —
//! exactly the accounting Tables 1–2 of the paper report. Work that lands
//! in a partition on behalf of other ranks is additionally tallied as
//! `service_ops` against the owner, which is where heavy-hitter load
//! imbalance (Fig. 6) becomes visible.
//!
//! Every sub-shard carries a **mutation sequence number** bumped on each
//! write that touches it. Read-only consumers (the software caches, the
//! merAligner seed index) capture a [`version_stamp`] and validate it
//! unchanged after the read phase — the sequence-validated access that
//! makes the coherence contract of [`crate::lookup`] checkable instead of
//! merely documented.
//!
//! The `try_*` batch variants ([`try_merge_batch`], [`try_fetch_batch`])
//! are the non-blocking sends of the async completion layer
//! ([`crate::comp`]): they fail fast when a sub-shard lock is contended,
//! handing the batch back to the caller to park and retry at drain time
//! instead of stalling the sending worker.
//!
//! [`CommStats`]: crate::stats::CommStats
//! [`version_stamp`]: DistHashMap::version_stamp
//! [`try_merge_batch`]: DistHashMap::try_merge_batch
//! [`try_fetch_batch`]: DistHashMap::try_fetch_batch

use crate::metrics;
use crate::team::RankCtx;
use crate::topology::Topology;
use crate::trace;
use hipmer_dna::KmerBuildHasher;
use hipmer_sketch::MisraGries;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How keys map to owner ranks.
#[derive(Clone)]
pub enum Placement {
    /// Uniform: `owner = hash % ranks`. The default for every table.
    Cyclic,
    /// A custom mapping from key hash to owner rank — the hook the oracle
    /// partitioning of §3.2 plugs into.
    Custom(Arc<dyn Fn(u64) -> usize + Send + Sync>),
}

impl std::fmt::Debug for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Cyclic => write!(f, "Placement::Cyclic"),
            Placement::Custom(_) => write!(f, "Placement::Custom(..)"),
        }
    }
}

/// Independently locked sub-shards per owner rank (a power of two).
///
/// A phase runs at most `min(os_threads, ranks)` concurrent workers, so
/// `ranks × SUB_SHARDS_PER_RANK` total locks is always ≥ 8× the worker
/// count — the contention headroom the measured-parallelism engine needs.
/// The constant is deliberately **independent of the host's thread count**:
/// sub-shard membership feeds local iteration order, and a host-dependent
/// layout would make output-determinism arguments depend on the machine.
pub const SUB_SHARDS_PER_RANK: usize = 8;

/// Outcome of a non-blocking batch send: `Ok` carries the drained batch
/// buffer back for reuse ([`crate::BufferPool`]); `Err` carries the
/// entries that parked behind a contended sub-shard lock, to be retried
/// at drain time.
pub type TryBatchResult<K, V> = Result<Vec<(K, V)>, Vec<(K, V)>>;

/// One lockable slice of an owner rank's partition.
struct SubShard<K, V> {
    map: Mutex<HashMap<K, V, KmerBuildHasher>>,
    /// Mutation sequence number: bumped once per write batch / write op
    /// that touches this sub-shard. Never reset.
    seq: AtomicU64,
}

impl<K, V> Default for SubShard<K, V> {
    fn default() -> Self {
        SubShard {
            map: Mutex::new(HashMap::default()),
            seq: AtomicU64::new(0),
        }
    }
}

/// Process-global table id source (see [`DistHashMap::table_id`]).
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// An owner-selection override: hashes a key to a placement-routable
/// value (see [`DistHashMap::with_locality_hash`]).
pub type LocalityHash<K> = Arc<dyn Fn(&K) -> u64 + Send + Sync>;

/// A hash table partitioned across the virtual ranks of a [`Topology`].
pub struct DistHashMap<K, V> {
    topo: Topology,
    placement: Placement,
    /// Optional **locality hash** override for owner selection (see
    /// [`DistHashMap::with_locality_hash`]): when set, the owner rank is
    /// computed from this hash instead of [`key_hash`](Self::key_hash),
    /// while sub-shard selection stays on `key_hash` — so content-aware
    /// placements (minimizer bucketing) still spread one owner's keys over
    /// its sub-shards.
    locality: Option<LocalityHash<K>>,
    /// `ranks * SUB_SHARDS_PER_RANK` sub-shards; index
    /// `owner * SUB_SHARDS_PER_RANK + sub`.
    shards: Vec<SubShard<K, V>>,
    /// Remote-landed updates serviced by each shard's owner.
    service: Vec<AtomicU64>,
    hasher: KmerBuildHasher,
    /// Logical payload bytes per transferred entry (key + value estimate).
    entry_bytes: u64,
    /// Process-unique identity (see [`DistHashMap::table_id`]).
    table_id: u64,
    /// Misra–Gries summary over the key hashes of service operations, for
    /// naming the heavy hitters behind `service_ops` skew. `None` (free)
    /// unless [`trace::hotkey_capacity`] was nonzero at construction or
    /// tracking was requested via [`DistHashMap::with_hot_key_tracking`].
    hot_keys: Option<Mutex<MisraGries<u64>>>,
}

impl<K, V> DistHashMap<K, V>
where
    K: Hash + Eq + Send,
    V: Send,
{
    /// An empty table over `topo` with cyclic placement.
    pub fn new(topo: Topology) -> Self {
        Self::with_placement(topo, Placement::Cyclic)
    }

    /// An empty table with an explicit placement function.
    pub fn with_placement(topo: Topology, placement: Placement) -> Self {
        let ranks = topo.ranks();
        let hot_keys = match trace::hotkey_capacity() {
            0 => None,
            cap => Some(Mutex::new(MisraGries::new(cap))),
        };
        DistHashMap {
            topo,
            placement,
            locality: None,
            shards: (0..ranks * SUB_SHARDS_PER_RANK)
                .map(|_| SubShard::default())
                .collect(),
            service: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            hasher: KmerBuildHasher::default(),
            entry_bytes: (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64,
            table_id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            hot_keys,
        }
    }

    /// Enable hot-key tracking on this table with an explicit Misra–Gries
    /// capacity, regardless of the process-global setting.
    pub fn with_hot_key_tracking(mut self, capacity: usize) -> Self {
        self.hot_keys = Some(Mutex::new(MisraGries::new(capacity)));
        self
    }

    /// Route **owner selection** through `f` instead of the uniform
    /// [`key_hash`](Self::key_hash): the owner becomes
    /// `placement(f(key))` while sub-shard selection keeps using
    /// `key_hash`'s top bits. This is the hook content-aware partitioners
    /// (minimizer bucketing — [`crate::part`]) plug into: keys that share a
    /// locality hash land on one rank without piling into one sub-shard.
    ///
    /// Must be applied before any entry is inserted (a populated table
    /// re-homed under a different owner function would orphan its entries).
    pub fn with_locality_hash(mut self, f: LocalityHash<K>) -> Self {
        assert!(
            self.shards.iter().all(|s| s.map.lock().is_empty()),
            "locality hash must be set before the table is populated"
        );
        self.locality = Some(f);
        self
    }

    /// Whether owner selection uses a locality-hash override.
    #[inline]
    pub fn has_locality_hash(&self) -> bool {
        self.locality.is_some()
    }

    /// A process-unique identity for this table instance. Read-side
    /// consumers that snapshot table contents ([`crate::SoftwareCache`])
    /// bind to this id so a cache filled from one table can never serve
    /// entries to a different table — e.g. one with another partitioner,
    /// where even the owner ranks disagree.
    #[inline]
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// Observe one service operation on `key` in the hot-key summary.
    #[inline]
    fn track_hot_key(&self, key: &K) {
        if let Some(mg) = &self.hot_keys {
            mg.lock().observe(self.key_hash(key));
        }
    }

    /// The `top_k` heaviest key hashes seen by service operations, as
    /// `(key_hash, estimated_count)` sorted by descending count. Empty when
    /// tracking is off. Counts are Misra–Gries lower bounds.
    pub fn hot_keys(&self, top_k: usize) -> Vec<(u64, u64)> {
        match &self.hot_keys {
            None => Vec::new(),
            Some(mg) => {
                let mut all = mg.lock().heavy_hitters(1);
                all.truncate(top_k);
                all
            }
        }
    }

    /// The topology this table is partitioned over.
    #[inline]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Logical payload bytes accounted per transferred entry (key + value
    /// size estimate). Batched reads and writes charge `n * entry_bytes`
    /// per shipped buffer so bandwidth totals match the fine-grained path.
    #[inline]
    pub fn entry_bytes(&self) -> u64 {
        self.entry_bytes
    }

    /// The 64-bit hash used for placement (stable across ranks and runs).
    #[inline]
    pub fn key_hash(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// The rank owning the key whose placement hash is `h`.
    ///
    /// A `Placement::Custom` owner outside `0..ranks` is checked with a
    /// **release-mode** assert: the owner feeds `shard_index`, and an
    /// out-of-range value would silently index (or corrupt) an unrelated
    /// rank's sub-shard — the same rationale as `Topology::chunk`'s release
    /// bounds check.
    #[inline]
    fn owner_of_hash(&self, h: u64) -> usize {
        match &self.placement {
            Placement::Cyclic => (h % self.topo.ranks() as u64) as usize,
            Placement::Custom(f) => {
                let r = f(h);
                assert!(
                    r < self.topo.ranks(),
                    "custom placement returned owner {r} for a table of {} ranks",
                    self.topo.ranks()
                );
                r
            }
        }
    }

    /// The hash that drives owner selection: the locality hash when one is
    /// installed ([`with_locality_hash`](Self::with_locality_hash)),
    /// otherwise [`key_hash`](Self::key_hash).
    #[inline]
    fn placement_hash(&self, key: &K) -> u64 {
        match &self.locality {
            Some(f) => f(key),
            None => self.key_hash(key),
        }
    }

    /// The rank owning `key`.
    #[inline]
    pub fn owner(&self, key: &K) -> usize {
        self.owner_of_hash(self.placement_hash(key))
    }

    /// Sub-shard selector: the hash's top bits, independent of the
    /// placement's `hash % ranks` (or custom) owner choice.
    #[inline]
    fn sub_of_hash(h: u64) -> usize {
        (h >> 61) as usize & (SUB_SHARDS_PER_RANK - 1)
    }

    /// Global sub-shard index for a key of `owner` with hash `h`.
    #[inline]
    fn shard_index(owner: usize, h: u64) -> usize {
        owner * SUB_SHARDS_PER_RANK + Self::sub_of_hash(h)
    }

    /// Global sub-shard index holding `key`: owner from the placement
    /// hash, sub-shard from `key_hash`'s top bits.
    #[inline]
    fn shard_of_key(&self, key: &K) -> usize {
        Self::shard_index(self.owner(key), self.key_hash(key))
    }

    /// Record one one-sided access by `ctx.rank` against `owner`'s shard
    /// (subject to fault injection when the rank's team carries a
    /// [`crate::FaultPlan`]).
    #[inline]
    fn account(&self, ctx: &mut RankCtx, owner: usize) {
        ctx.comm(&self.topo, owner, self.entry_bytes);
    }

    /// Take a sub-shard lock. With the metrics registry enabled, a failed
    /// `try_lock` first counts one `pgas/dht/lock_contention` tick before
    /// blocking — the simulator's stand-in for the remote atomics HipMer's
    /// UPC tables contend on. Disabled cost: one relaxed atomic load on top
    /// of the lock itself.
    #[inline]
    fn lock_shard(
        &self,
        idx: usize,
    ) -> parking_lot::MutexGuard<'_, HashMap<K, V, KmerBuildHasher>> {
        let shard = &self.shards[idx];
        if metrics::is_enabled() {
            if let Some(guard) = shard.map.try_lock() {
                return guard;
            }
            metrics::counter_add("pgas/dht/lock_contention", 1);
        }
        shard.map.lock()
    }

    /// Bump a sub-shard's mutation sequence number (call once per write op
    /// or applied write batch).
    #[inline]
    fn bump_seq(&self, idx: usize) {
        self.shards[idx].seq.fetch_add(1, Ordering::Release);
    }

    /// Test-only: hold the lock of the sub-shard owning `key`, to simulate
    /// a contended owner from unit tests in sibling modules.
    #[cfg(test)]
    pub(crate) fn lock_shard_of_key_for_test(
        &self,
        key: &K,
    ) -> parking_lot::MutexGuard<'_, HashMap<K, V, KmerBuildHasher>> {
        self.shards[self.shard_of_key(key)].map.lock()
    }

    /// Sum of all sub-shard mutation sequence numbers — a cheap stamp that
    /// changes whenever any write lands anywhere in the table.
    ///
    /// The sequence-validated read protocol: capture the stamp before a
    /// read-only phase (cached seed lookups, contig-replica reads), and
    /// assert it unchanged afterwards. A changed stamp means some rank
    /// mutated the table while caches assumed immutability — the coherence
    /// contract of [`crate::SoftwareCache`] was violated.
    pub fn version_stamp(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.seq.load(Ordering::Acquire))
            .sum()
    }

    /// Total number of independently locked sub-shards
    /// (`ranks × SUB_SHARDS_PER_RANK`).
    pub fn sub_shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One-sided read. Returns a clone of the value.
    pub fn get(&self, ctx: &mut RankCtx, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let owner = self.owner(key);
        self.account(ctx, owner);
        self.lock_shard(self.shard_of_key(key)).get(key).cloned()
    }

    /// One-sided existence check.
    pub fn contains(&self, ctx: &mut RankCtx, key: &K) -> bool {
        let owner = self.owner(key);
        self.account(ctx, owner);
        self.lock_shard(self.shard_of_key(key)).contains_key(key)
    }

    /// One-sided write; returns the previous value if any. Counts a service
    /// op at the owner.
    pub fn insert(&self, ctx: &mut RankCtx, key: K, value: V) -> Option<V> {
        let owner = self.owner(&key);
        self.account(ctx, owner);
        self.service[owner].fetch_add(1, Ordering::Relaxed);
        self.track_hot_key(&key);
        let idx = Self::shard_index(owner, self.key_hash(&key));
        self.bump_seq(idx);
        self.lock_shard(idx).insert(key, value)
    }

    /// One-sided upsert: create the entry with `default` if absent, then
    /// apply `f`. This is the primitive k-mer counting and link generation
    /// are built on.
    pub fn update<D, F>(&self, ctx: &mut RankCtx, key: K, default: D, f: F)
    where
        D: FnOnce() -> V,
        F: FnOnce(&mut V),
    {
        let owner = self.owner(&key);
        self.account(ctx, owner);
        self.service[owner].fetch_add(1, Ordering::Relaxed);
        self.track_hot_key(&key);
        let idx = Self::shard_index(owner, self.key_hash(&key));
        self.bump_seq(idx);
        let mut shard = self.lock_shard(idx);
        f(shard.entry(key).or_insert_with(default));
    }

    /// One-sided read-modify-write with full access to the slot (present or
    /// not). Used by the traversal's claim protocol.
    pub fn with_mut<T, F>(&self, ctx: &mut RankCtx, key: &K, f: F) -> T
    where
        F: FnOnce(Option<&mut V>) -> T,
    {
        let owner = self.owner(key);
        self.account(ctx, owner);
        let idx = self.shard_of_key(key);
        self.bump_seq(idx);
        let mut shard = self.lock_shard(idx);
        f(shard.get_mut(key))
    }

    /// One-sided removal.
    pub fn remove(&self, ctx: &mut RankCtx, key: &K) -> Option<V> {
        let owner = self.owner(key);
        self.account(ctx, owner);
        let idx = self.shard_of_key(key);
        self.bump_seq(idx);
        self.lock_shard(idx).remove(key)
    }

    /// Answer a batch of lookups that arrived as **one** multi-get message
    /// (see [`crate::LookupBatch`] / [`multi_get`](Self::multi_get)). The
    /// caller has already accounted the message; like
    /// [`get`](Self::get) — and unlike [`merge_batch`](Self::merge_batch) —
    /// this tallies **no** service ops and does not touch the hot-key
    /// summary, so converting a loop of `get`s into one `fetch_batch` leaves
    /// every counter except the message count unchanged.
    ///
    /// Every key must be owned by `dest` (checked in debug builds). Results
    /// come back in key order; each sub-shard lock is taken once for the
    /// whole batch — the read-side analogue of the aggregated-store lock
    /// saving documented in [`crate::agg`].
    pub fn fetch_batch(&self, dest: usize, keys: &[&K]) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let mut out: Vec<Option<V>> = Vec::with_capacity(keys.len());
        out.resize_with(keys.len(), || None);
        let subs: Vec<u8> = keys
            .iter()
            .map(|k| {
                debug_assert_eq!(self.owner(k), dest, "fetch_batch key not owned by dest");
                Self::sub_of_hash(self.key_hash(k)) as u8
            })
            .collect();
        for sub in 0..SUB_SHARDS_PER_RANK {
            if !subs.iter().any(|&s| s as usize == sub) {
                continue;
            }
            let shard = self.lock_shard(dest * SUB_SHARDS_PER_RANK + sub);
            for (i, k) in keys.iter().enumerate() {
                if subs[i] as usize == sub {
                    out[i] = shard.get(*k).cloned();
                }
            }
        }
        out
    }

    /// Non-blocking [`fetch_batch`](Self::fetch_batch): resolve the batch
    /// only if **every** needed sub-shard lock is immediately available
    /// (acquired in ascending index order — the module's lock-ordering
    /// rule). Returns `None` without blocking when any is contended; the
    /// caller parks the request batch and retries at drain time
    /// ([`crate::LookupBatch::drain`]). Each refusal counts one
    /// `pgas/dht/lock_contention` tick (metrics enabled).
    pub fn try_fetch_batch(&self, dest: usize, keys: &[&K]) -> Option<Vec<Option<V>>>
    where
        V: Clone,
    {
        let subs: Vec<u8> = keys
            .iter()
            .map(|k| {
                debug_assert_eq!(self.owner(k), dest, "try_fetch_batch key not owned by dest");
                Self::sub_of_hash(self.key_hash(k)) as u8
            })
            .collect();
        let mut guards: Vec<Option<parking_lot::MutexGuard<'_, _>>> = Vec::new();
        guards.resize_with(SUB_SHARDS_PER_RANK, || None);
        for (sub, slot) in guards.iter_mut().enumerate() {
            if !subs.iter().any(|&s| s as usize == sub) {
                continue;
            }
            match self.shards[dest * SUB_SHARDS_PER_RANK + sub].map.try_lock() {
                Some(guard) => *slot = Some(guard),
                None => {
                    metrics::counter_add("pgas/dht/lock_contention", 1);
                    return None; // guards drop, releasing what was taken
                }
            }
        }
        let mut out: Vec<Option<V>> = Vec::with_capacity(keys.len());
        for (k, &sub) in keys.iter().zip(&subs) {
            let shard = guards[sub as usize].as_ref().expect("locked above");
            out.push(shard.get(*k).cloned());
        }
        Some(out)
    }

    /// Batched one-sided read: group `keys` by owner, ship **one** message
    /// per distinct owner (bytes accounted in full — `group_len *
    /// entry_bytes` — mirroring [`crate::Outbox`] semantics), and return the
    /// values in input-key order.
    ///
    /// Results are byte-identical to `keys.iter().map(|k| self.get(ctx,
    /// k))`; only the accounting differs: per-message latency is divided by
    /// the group size, bandwidth is not saved, and
    /// [`CommStats::lookup_batches`](crate::CommStats::lookup_batches) is
    /// incremented once per shipped group. For streaming call sites that
    /// cannot collect keys up front, use [`crate::LookupBatch`].
    pub fn multi_get(&self, ctx: &mut RankCtx, keys: &[K]) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let ranks = self.topo.ranks();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); ranks];
        for (i, k) in keys.iter().enumerate() {
            groups[self.owner(k)].push(i);
        }
        let mut out: Vec<Option<V>> = Vec::with_capacity(keys.len());
        out.resize_with(keys.len(), || None);
        for (dest, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            ctx.comm(&self.topo, dest, group.len() as u64 * self.entry_bytes);
            ctx.stats.lookup_batches += 1;
            let batch_keys: Vec<&K> = group.iter().map(|&i| &keys[i]).collect();
            for (i, v) in group.into_iter().zip(self.fetch_batch(dest, &batch_keys)) {
                out[i] = v;
            }
        }
        out
    }

    /// Partition a batch into per-sub-shard buckets, preserving the
    /// relative order of entries within each bucket (equal keys always land
    /// in the same bucket, so same-key merge order is deterministic).
    /// Returns the emptied carrier alongside the buckets for buffer reuse.
    #[allow(clippy::type_complexity)]
    fn bucket_entries(
        &self,
        entries: Vec<(K, V)>,
    ) -> (Vec<(K, V)>, [Vec<(K, V)>; SUB_SHARDS_PER_RANK]) {
        let mut buckets: [Vec<(K, V)>; SUB_SHARDS_PER_RANK] = std::array::from_fn(|_| Vec::new());
        let mut carrier = entries;
        for (k, v) in carrier.drain(..) {
            buckets[Self::sub_of_hash(self.key_hash(&k))].push((k, v));
        }
        (carrier, buckets)
    }

    /// Apply one sub-shard bucket under its lock, tallying service ops and
    /// hot keys for the applied entries.
    fn apply_bucket<M>(
        &self,
        dest: usize,
        sub: usize,
        bucket: Vec<(K, V)>,
        merge: &M,
        existing_only: bool,
    ) where
        M: Fn(&mut V, V),
    {
        self.service[dest].fetch_add(bucket.len() as u64, Ordering::Relaxed);
        if self.hot_keys.is_some() {
            for (k, _) in &bucket {
                self.track_hot_key(k);
            }
        }
        let idx = dest * SUB_SHARDS_PER_RANK + sub;
        self.bump_seq(idx);
        let mut shard = self.lock_shard(idx);
        for (k, v) in bucket {
            if existing_only {
                if let Some(slot) = shard.get_mut(&k) {
                    merge(slot, v);
                }
            } else {
                match shard.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), v),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(v);
                    }
                }
            }
        }
    }

    /// Blocking batch application shared by [`merge_batch`](Self::merge_batch)
    /// and [`merge_batch_existing`](Self::merge_batch_existing); returns the
    /// emptied carrier so aggregators can recycle it through their
    /// [`crate::arena::BufferPool`].
    pub(crate) fn apply_batch<M>(
        &self,
        dest: usize,
        entries: Vec<(K, V)>,
        merge: &M,
        existing_only: bool,
    ) -> Vec<(K, V)>
    where
        M: Fn(&mut V, V),
    {
        let (carrier, buckets) = self.bucket_entries(entries);
        for (sub, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            self.apply_bucket(dest, sub, bucket, merge, existing_only);
        }
        carrier
    }

    /// Non-blocking batch application shared by
    /// [`try_merge_batch`](Self::try_merge_batch) and
    /// [`try_merge_batch_existing`](Self::try_merge_batch_existing).
    pub(crate) fn try_apply_batch<M>(
        &self,
        dest: usize,
        entries: Vec<(K, V)>,
        merge: &M,
        existing_only: bool,
    ) -> TryBatchResult<K, V>
    where
        M: Fn(&mut V, V),
    {
        let (mut carrier, buckets) = self.bucket_entries(entries);
        let mut contended = false;
        for (sub, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // Peek without blocking; the real lock (with its contention
            // accounting) is taken inside apply_bucket and cannot block
            // because sends of a phase never hold sub-shard locks across
            // calls (the module's lock-ordering rule) — but another worker
            // may still slip in, which is fine: apply_bucket then waits on
            // a lock known to be briefly held, which is not the stall the
            // try path exists to avoid. Keep it truly non-blocking instead:
            // a failed try_lock parks the bucket.
            match self.shards[dest * SUB_SHARDS_PER_RANK + sub].map.try_lock() {
                Some(guard) => {
                    drop(guard);
                    self.apply_bucket(dest, sub, bucket, merge, existing_only);
                }
                None => {
                    metrics::counter_add("pgas/dht/lock_contention", 1);
                    contended = true;
                    carrier.extend(bucket);
                }
            }
        }
        if contended {
            Err(carrier)
        } else {
            Ok(carrier)
        }
    }

    /// Apply a batch of merged updates that arrived as **one** aggregated
    /// message (see [`crate::AggregatingStores`]). The caller has already
    /// accounted the message; this only tallies the owner's service work.
    pub fn merge_batch<M>(&self, dest: usize, entries: Vec<(K, V)>, merge: M)
    where
        M: Fn(&mut V, V),
    {
        let _ = self.apply_batch(dest, entries, &merge, false);
    }

    /// Non-blocking [`merge_batch`](Self::merge_batch): entries whose
    /// sub-shard lock is free are applied immediately; entries behind a
    /// contended lock are handed back as `Err(leftovers)` for the caller to
    /// park and retry at drain time ([`crate::AggregatingStores::drain`]).
    /// `Ok` carries the emptied batch buffer for reuse. Same-key entries
    /// keep their relative order (they share a sub-shard), so deferred
    /// application commutes with the in-order blocking path for any
    /// per-key merge.
    pub fn try_merge_batch<M>(
        &self,
        dest: usize,
        entries: Vec<(K, V)>,
        merge: M,
    ) -> TryBatchResult<K, V>
    where
        M: Fn(&mut V, V),
    {
        self.try_apply_batch(dest, entries, &merge, false)
    }

    /// As [`merge_batch`](Self::merge_batch), but entries whose key is not
    /// already present are **dropped** instead of inserted. This is the
    /// second-pass counting semantics of §3.1: only k-mers the Bloom filter
    /// admitted (seen at least twice) have table entries; votes for
    /// anything else are discarded.
    pub fn merge_batch_existing<M>(&self, dest: usize, entries: Vec<(K, V)>, merge: M)
    where
        M: Fn(&mut V, V),
    {
        let _ = self.apply_batch(dest, entries, &merge, true);
    }

    /// Non-blocking [`merge_batch_existing`](Self::merge_batch_existing);
    /// see [`try_merge_batch`](Self::try_merge_batch) for the contract.
    pub fn try_merge_batch_existing<M>(
        &self,
        dest: usize,
        entries: Vec<(K, V)>,
        merge: M,
    ) -> TryBatchResult<K, V>
    where
        M: Fn(&mut V, V),
    {
        self.try_apply_batch(dest, entries, &merge, true)
    }

    /// Total entries across all shards (collective metadata; not counted).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.map.lock().is_empty())
    }

    /// Iterate the acting rank's own partition (all its sub-shards, in
    /// sub-shard order), counting one local op per entry (each rank
    /// post-processing its local buckets is a standard phase in the paper:
    /// link assessment, depth summation, ...).
    pub fn fold_local<T, F>(&self, ctx: &mut RankCtx, init: T, mut f: F) -> T
    where
        F: FnMut(T, &K, &V) -> T,
    {
        let mut acc = init;
        for sub in 0..SUB_SHARDS_PER_RANK {
            let shard = self.shards[ctx.rank * SUB_SHARDS_PER_RANK + sub].map.lock();
            ctx.stats.local_ops += shard.len() as u64;
            for (k, v) in shard.iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }

    /// Snapshot the acting rank's partition as (key, value) pairs, charging
    /// only compute (a linear scan of local memory, not hash lookups).
    /// Used for seed scans where the per-entry cost is a flag check, not a
    /// table operation.
    pub fn snapshot_local(&self, ctx: &mut RankCtx) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        for sub in 0..SUB_SHARDS_PER_RANK {
            let shard = self.shards[ctx.rank * SUB_SHARDS_PER_RANK + sub].map.lock();
            ctx.stats.compute(shard.len() as u64);
            out.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Drain the acting rank's partition into a vector (counts local ops).
    pub fn drain_local(&self, ctx: &mut RankCtx) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for sub in 0..SUB_SHARDS_PER_RANK {
            let idx = ctx.rank * SUB_SHARDS_PER_RANK + sub;
            self.bump_seq(idx);
            let mut shard = self.shards[idx].map.lock();
            ctx.stats.local_ops += shard.len() as u64;
            out.extend(shard.drain());
        }
        out
    }

    /// Mutate every entry of the acting rank's partition in place.
    pub fn for_each_local_mut<F>(&self, ctx: &mut RankCtx, mut f: F)
    where
        F: FnMut(&K, &mut V),
    {
        for sub in 0..SUB_SHARDS_PER_RANK {
            let idx = ctx.rank * SUB_SHARDS_PER_RANK + sub;
            self.bump_seq(idx);
            let mut shard = self.shards[idx].map.lock();
            ctx.stats.local_ops += shard.len() as u64;
            for (k, v) in shard.iter_mut() {
                f(k, v);
            }
        }
    }

    /// Retain only entries satisfying the predicate in the acting rank's
    /// partition (used to discard below-threshold k-mers after counting).
    pub fn retain_local<F>(&self, ctx: &mut RankCtx, mut f: F)
    where
        F: FnMut(&K, &mut V) -> bool,
    {
        for sub in 0..SUB_SHARDS_PER_RANK {
            let idx = ctx.rank * SUB_SHARDS_PER_RANK + sub;
            self.bump_seq(idx);
            let mut shard = self.shards[idx].map.lock();
            ctx.stats.local_ops += shard.len() as u64;
            shard.retain(|k, v| f(k, v));
        }
    }

    /// Move each shard owner's accumulated service work into the per-rank
    /// stats vector collected from a finished phase. Resets the counters.
    ///
    /// With the metrics registry enabled, this end-of-phase collective also
    /// publishes table occupancy: the `pgas/dht/entries` gauge keeps the
    /// high-water total entry count across all tables, and
    /// `pgas/dht/load_factor_max` the worst max-rank/mean-rank ratio
    /// observed (1.0 = perfectly balanced placement; the paper's heavy
    /// hitters show up here before they show up in `service_ops` skew).
    pub fn drain_service_into(&self, stats: &mut [crate::CommStats]) {
        assert_eq!(stats.len(), self.topo.ranks());
        for (rank, c) in self.service.iter().enumerate() {
            stats[rank].service_ops += c.swap(0, Ordering::Relaxed);
        }
        if metrics::is_enabled() {
            let sizes = self.shard_sizes();
            let total: usize = sizes.iter().sum();
            metrics::gauge_max("pgas/dht/entries", total as f64);
            if total > 0 {
                let max = sizes.iter().copied().max().unwrap_or(0) as f64;
                let mean = total as f64 / sizes.len().max(1) as f64;
                metrics::gauge_max("pgas/dht/load_factor_max", max / mean);
            }
        }
    }

    /// Clone every entry across all shards, **without** touching any
    /// counters — a collective metadata operation used by the checkpoint
    /// writer, which prices the traffic as checkpoint I/O instead.
    pub fn snapshot_entries(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.map.lock();
            out.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Bulk-load entries into their owner shards, **without** touching any
    /// counters or service tallies — the checkpoint-restore path, whose I/O
    /// cost is accounted by the resume machinery as a `checkpoint/load-*`
    /// phase instead of as table traffic. Sequence numbers still advance
    /// (a restore is a write).
    pub fn preload(&self, entries: impl IntoIterator<Item = (K, V)>) {
        for (k, v) in entries {
            let idx = self.shard_of_key(&k);
            self.bump_seq(idx);
            self.shards[idx].map.lock().insert(k, v);
        }
    }

    /// Consume the table, yielding every entry (for tests / final output).
    pub fn into_entries(self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in self.shards {
            out.extend(shard.map.into_inner());
        }
        out
    }

    /// Snapshot of the per-rank partition sizes (load-balance diagnostics);
    /// each rank's size sums its sub-shards.
    pub fn shard_sizes(&self) -> Vec<usize> {
        (0..self.topo.ranks())
            .map(|rank| {
                (0..SUB_SHARDS_PER_RANK)
                    .map(|sub| {
                        self.shards[rank * SUB_SHARDS_PER_RANK + sub]
                            .map
                            .lock()
                            .len()
                    })
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rank: usize, topo: Topology) -> RankCtx {
        RankCtx::new(rank, topo)
    }

    #[test]
    fn insert_get_roundtrip() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, String> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        assert_eq!(dht.insert(&mut c, 42, "hello".into()), None);
        assert_eq!(dht.get(&mut c, &42), Some("hello".into()));
        assert_eq!(dht.get(&mut c, &43), None);
        assert!(dht.contains(&mut c, &42));
        assert_eq!(dht.len(), 1);
    }

    #[test]
    fn owner_is_stable_and_in_range() {
        let topo = Topology::new(7, 3);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        for key in 0..1000u64 {
            let o = dht.owner(&key);
            assert!(o < 7);
            assert_eq!(o, dht.owner(&key));
        }
    }

    #[test]
    fn sub_shard_count_gives_contention_headroom() {
        // A phase runs at most min(os_threads, ranks) workers, so the
        // sub-shard count is always >= 8x the worker count.
        let topo = Topology::new(16, 8);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        assert_eq!(dht.sub_shard_count(), 16 * SUB_SHARDS_PER_RANK);
        assert!(dht.sub_shard_count() >= 8 * 16);
        // Keys of one owner spread over that owner's sub-shards.
        let mut c = ctx(0, topo);
        for k in 0..4096u64 {
            dht.insert(&mut c, k, 0);
        }
        let rank0_keys: Vec<u64> = (0..4096).filter(|k| dht.owner(k) == 0).collect();
        let mut subs_used = std::collections::HashSet::new();
        for k in &rank0_keys {
            subs_used.insert(dht.shard_of_key(k));
        }
        assert!(
            subs_used.len() > SUB_SHARDS_PER_RANK / 2,
            "keys should spread over sub-shards, used {}",
            subs_used.len()
        );
    }

    #[test]
    fn comm_accounting_matches_owner_locality() {
        let topo = Topology::new(48, 24);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        // Find keys owned locally / on node 0 / off node.
        let local_key = (0..).find(|k| dht.owner(k) == 0).unwrap();
        let onnode_key = (0..).find(|k| (1..24).contains(&dht.owner(k))).unwrap();
        let offnode_key = (0..).find(|k| dht.owner(k) >= 24).unwrap();
        dht.insert(&mut c, local_key, 1);
        dht.insert(&mut c, onnode_key, 2);
        dht.insert(&mut c, offnode_key, 3);
        assert_eq!(c.stats.local_ops, 1);
        assert_eq!(c.stats.onnode_msgs, 1);
        assert_eq!(c.stats.offnode_msgs, 1);
    }

    #[test]
    fn update_upserts() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(1, topo);
        dht.update(&mut c, 5, || 0, |v| *v += 10);
        dht.update(&mut c, 5, || 0, |v| *v += 10);
        assert_eq!(dht.get(&mut c, &5), Some(20));
    }

    #[test]
    fn service_ops_attributed_to_owner() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        // Insert many keys; service ops land at owners, not at rank 0.
        for k in 0..100 {
            dht.insert(&mut c, k, 0);
        }
        let mut stats = vec![crate::CommStats::new(); 4];
        dht.drain_service_into(&mut stats);
        let total: u64 = stats.iter().map(|s| s.service_ops).sum();
        assert_eq!(total, 100);
        // And the counters reset.
        let mut again = vec![crate::CommStats::new(); 4];
        dht.drain_service_into(&mut again);
        assert!(again.iter().all(|s| s.service_ops == 0));
    }

    #[test]
    fn fold_and_drain_local_only_touch_own_shard() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c0 = ctx(0, topo);
        for k in 0..200 {
            dht.insert(&mut c0, k, 1);
        }
        let mut seen = 0usize;
        for rank in 0..4 {
            let mut c = ctx(rank, topo);
            seen += dht.fold_local(&mut c, 0usize, |acc, _, _| acc + 1);
        }
        assert_eq!(seen, 200);

        let mut c2 = ctx(2, topo);
        let drained = dht.drain_local(&mut c2);
        assert!(drained.iter().all(|(k, _)| dht.owner(k) == 2));
        assert_eq!(dht.len(), 200 - drained.len());
    }

    #[test]
    fn retain_local_filters() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        for k in 0..100 {
            dht.insert(&mut c, k, (k % 10) as u32);
        }
        for rank in 0..2 {
            let mut cr = ctx(rank, topo);
            dht.retain_local(&mut cr, |_, v| *v >= 5);
        }
        assert_eq!(dht.len(), 50);
    }

    #[test]
    fn custom_placement_is_respected() {
        let topo = Topology::new(4, 2);
        // Everything on rank 3.
        let placement = Placement::Custom(Arc::new(|_h| 3));
        let dht: DistHashMap<u64, u32> = DistHashMap::with_placement(topo, placement);
        let mut c = ctx(0, topo);
        for k in 0..50 {
            dht.insert(&mut c, k, 0);
        }
        assert_eq!(dht.shard_sizes(), vec![0, 0, 0, 50]);
    }

    #[test]
    fn out_of_range_custom_owner_is_rejected_in_release_builds_too() {
        // A bogus owner would index an unrelated rank's sub-shard; the
        // check must be a real assert, not a debug_assert (this test runs
        // under `--release` in the bench/CI configurations as well).
        let topo = Topology::new(4, 2);
        let placement = Placement::Custom(Arc::new(|_h| 7)); // >= ranks
        let dht: DistHashMap<u64, u32> = DistHashMap::with_placement(topo, placement);
        let mut c = ctx(0, topo);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dht.insert(&mut c, 1, 1);
        }))
        .expect_err("out-of-range owner must panic even with debug_asserts off");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("custom placement returned owner 7"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn locality_hash_overrides_owner_but_not_sub_shard_spread() {
        let topo = Topology::new(4, 2);
        // All keys share one locality hash => one owner; sub-shard
        // selection must still ride the per-key hash and spread.
        let dht: DistHashMap<u64, u32> =
            DistHashMap::new(topo).with_locality_hash(Arc::new(|_k: &u64| 3));
        assert!(dht.has_locality_hash());
        let mut c = ctx(0, topo);
        for k in 0..256u64 {
            dht.insert(&mut c, k, 0);
        }
        assert_eq!(dht.shard_sizes(), vec![0, 0, 0, 256]);
        let subs: std::collections::HashSet<usize> =
            (0..256u64).map(|k| dht.shard_of_key(&k)).collect();
        assert!(
            subs.len() > SUB_SHARDS_PER_RANK / 2,
            "co-owned keys must spread over the owner's sub-shards, used {}",
            subs.len()
        );
        // Reads, batched reads and removal agree with the overridden owner
        // (the locality hash maps every key to 3, and 3 % 4 ranks = 3).
        assert_eq!(dht.owner(&7), dht.owner_of_hash(3));
        assert_eq!(dht.get(&mut c, &7), Some(0));
        assert_eq!(dht.multi_get(&mut c, &[1, 2, 3]), vec![Some(0); 3]);
        assert_eq!(dht.remove(&mut c, &7), Some(0));
    }

    #[test]
    fn locality_hash_keeps_grouped_keys_on_one_owner() {
        // Keys bucketed by key/8: every group of 8 consecutive keys shares
        // an owner — the minimizer-run shape — and preload/drain respect it.
        let topo = Topology::new(8, 4);
        let build = || -> DistHashMap<u64, u32> {
            DistHashMap::new(topo).with_locality_hash(Arc::new(|k: &u64| k / 8))
        };
        let dht = build();
        let mut c = ctx(0, topo);
        for k in 0..640u64 {
            dht.insert(&mut c, k, k as u32);
        }
        for group in 0..80u64 {
            let owners: std::collections::HashSet<usize> =
                (group * 8..group * 8 + 8).map(|k| dht.owner(&k)).collect();
            assert_eq!(owners.len(), 1, "group {group} split across owners");
        }
        // preload places by the same overridden owner function.
        let restored = build();
        restored.preload(dht.snapshot_entries());
        assert_eq!(restored.shard_sizes(), dht.shard_sizes());
        // drain_local returns exactly the rank's own (locality) partition.
        let mut c2 = ctx(2, topo);
        let drained = restored.drain_local(&mut c2);
        assert!(drained.iter().all(|(k, _)| restored.owner(k) == 2));
    }

    #[test]
    #[should_panic(expected = "before the table is populated")]
    fn locality_hash_rejected_on_populated_table() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        dht.insert(&mut c, 1, 1);
        let _ = dht.with_locality_hash(Arc::new(|_k: &u64| 0));
    }

    #[test]
    fn table_ids_are_unique() {
        let topo = Topology::new(2, 2);
        let a: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let b: DistHashMap<u64, u32> = DistHashMap::new(topo);
        assert_ne!(a.table_id(), b.table_id());
        assert_ne!(a.table_id(), 0);
    }

    #[test]
    fn merge_batch_applies_and_counts_service() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        dht.insert(&mut c, 1000, 5);
        let dest = dht.owner(&1000);
        dht.merge_batch(dest, vec![(1000, 7)], |a, b| *a += b);
        assert_eq!(dht.get(&mut c, &1000), Some(12));
        let mut stats = vec![crate::CommStats::new(); 2];
        dht.drain_service_into(&mut stats);
        assert_eq!(stats[dest].service_ops, 2); // insert + merged entry
    }

    #[test]
    fn try_merge_batch_applies_when_uncontended() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let dest = dht.owner(&7);
        let entries: Vec<(u64, u32)> = (0..64)
            .filter(|k| dht.owner(k) == dest)
            .map(|k| (k, 1))
            .collect();
        let n = entries.len();
        let carrier = dht
            .try_merge_batch(dest, entries, |a, b| *a += b)
            .expect("uncontended try_merge_batch must apply");
        assert!(carrier.is_empty(), "carrier comes back drained for reuse");
        assert_eq!(dht.len(), n);
        // Service ops match the blocking path.
        let mut stats = vec![crate::CommStats::new(); 4];
        dht.drain_service_into(&mut stats);
        assert_eq!(stats[dest].service_ops, n as u64);
    }

    #[test]
    fn try_merge_batch_parks_contended_entries() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let dest = dht.owner(&3);
        let entries: Vec<(u64, u32)> = (0..200)
            .filter(|k| dht.owner(k) == dest)
            .map(|k| (k, 1))
            .collect();
        let total = entries.len();
        // Hold one sub-shard's lock: entries bound for it must come back.
        let blocked_idx = dht.shard_of_key(&3);
        let held = dht.shards[blocked_idx].map.lock();
        let leftovers = dht
            .try_merge_batch(dest, entries, |a, b| *a += b)
            .expect_err("contended sub-shard must defer its bucket");
        drop(held);
        assert!(!leftovers.is_empty());
        assert!(
            leftovers.len() < total,
            "only the contended bucket defers, not the whole batch"
        );
        assert!(leftovers
            .iter()
            .all(|(k, _)| dht.shard_of_key(k) == blocked_idx));
        // Draining the leftovers through the blocking path converges to the
        // same table state and the same service total.
        let applied = total - leftovers.len();
        dht.merge_batch(dest, leftovers, |a, b| *a += b);
        assert_eq!(dht.len(), total);
        let mut stats = vec![crate::CommStats::new(); 2];
        dht.drain_service_into(&mut stats);
        assert_eq!(stats[dest].service_ops, total as u64);
        let _ = applied;
    }

    #[test]
    fn try_fetch_batch_is_all_or_nothing() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        let keys: Vec<u64> = (0..100).filter(|k| dht.owner(k) == 0).collect();
        for &k in &keys {
            dht.insert(&mut c, k, k as u32 * 2);
        }
        let refs: Vec<&u64> = keys.iter().collect();
        let vals = dht.try_fetch_batch(0, &refs).expect("uncontended");
        assert_eq!(vals.len(), keys.len());
        for (k, v) in keys.iter().zip(&vals) {
            assert_eq!(*v, Some(*k as u32 * 2));
        }
        // Holding any needed sub-shard lock refuses the whole batch.
        let held = dht.shards[dht.shard_of_key(&keys[0])].map.lock();
        assert!(dht.try_fetch_batch(0, &refs).is_none());
        drop(held);
        assert!(dht.try_fetch_batch(0, &refs).is_some());
    }

    #[test]
    fn version_stamp_advances_on_writes_only() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        let v0 = dht.version_stamp();
        dht.insert(&mut c, 1, 1);
        let v1 = dht.version_stamp();
        assert!(v1 > v0, "insert must advance the stamp");
        // Reads leave the stamp untouched: the sequence-validated read
        // protocol for caches.
        let _ = dht.get(&mut c, &1);
        let _ = dht.contains(&mut c, &1);
        let _ = dht.multi_get(&mut c, &[1, 2, 3]);
        let _ = dht.snapshot_entries();
        assert_eq!(dht.version_stamp(), v1);
        dht.update(&mut c, 1, || 0, |v| *v += 1);
        assert!(dht.version_stamp() > v1, "update must advance the stamp");
    }

    #[test]
    fn with_mut_sees_missing_and_present() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        assert!(dht.with_mut(&mut c, &9, |slot| slot.is_none()));
        dht.insert(&mut c, 9, 1);
        dht.with_mut(&mut c, &9, |slot| *slot.unwrap() = 99);
        assert_eq!(dht.get(&mut c, &9), Some(99));
    }

    #[test]
    fn hot_key_tracking_names_the_heavy_hitter() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo).with_hot_key_tracking(16);
        let mut c = ctx(0, topo);
        // One ultra-frequent key among a uniform background.
        for i in 0..500u64 {
            dht.update(&mut c, 7777, || 0, |v| *v += 1);
            dht.update(&mut c, i, || 0, |v| *v += 1);
        }
        let hot = dht.hot_keys(3);
        assert!(!hot.is_empty());
        assert_eq!(hot[0].0, dht.key_hash(&7777));
        assert!(hot[0].1 > 100, "count {} too low", hot[0].1);
        for w in hot.windows(2) {
            assert!(w[0].1 >= w[1].1, "sorted descending");
        }
    }

    #[test]
    fn hot_key_tracking_off_by_default_and_free() {
        let topo = Topology::new(2, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        for i in 0..100u64 {
            dht.insert(&mut c, i % 3, 0);
        }
        assert!(dht.hot_keys(10).is_empty());
    }

    #[test]
    fn snapshot_and_preload_bypass_counters() {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        for k in 0..100 {
            dht.insert(&mut c, k, (k * 2) as u32);
        }
        let mut entries = dht.snapshot_entries();
        entries.sort_unstable();
        assert_eq!(entries.len(), 100);

        let restored: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut c2 = ctx(1, topo);
        restored.preload(entries.clone());
        // No accesses, no service ops were recorded by either operation.
        assert_eq!(c2.stats.total_accesses(), 0);
        let mut stats = vec![crate::CommStats::new(); 4];
        restored.drain_service_into(&mut stats);
        assert!(stats.iter().all(|s| s.service_ops == 0));
        // But the data round-tripped, landing on the same owners.
        assert_eq!(restored.shard_sizes(), dht.shard_sizes());
        assert_eq!(restored.get(&mut c2, &7), Some(14));
    }

    #[test]
    fn metrics_capture_occupancy_and_contention() {
        let _guard = metrics::TEST_LOCK.lock().unwrap();
        metrics::reset();
        metrics::enable();

        let topo = Topology::new(4, 2);
        // All keys on rank 3: max/mean load factor = 4.0.
        let placement = Placement::Custom(Arc::new(|_h| 3));
        let dht: DistHashMap<u64, u32> = DistHashMap::with_placement(topo, placement);
        let mut c = ctx(0, topo);
        for k in 0..80 {
            dht.insert(&mut c, k, 0);
        }
        let mut stats = vec![crate::CommStats::new(); 4];
        dht.drain_service_into(&mut stats);

        // Contention: hold key 0's sub-shard lock while another thread
        // inserts that key. The insert's try_lock fails and counts
        // contention *before* blocking, so we can wait on the counter and
        // then release.
        let contention = || {
            metrics::snapshot().iter().find_map(|m| match m {
                metrics::MetricSnapshot::Counter(n, v) if n == "pgas/dht/lock_contention" => {
                    Some(*v)
                }
                _ => None,
            })
        };
        let held = dht.shards[dht.shard_of_key(&0)].map.lock();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut c2 = RankCtx::new(1, topo);
                dht.insert(&mut c2, 0, 9); // blocks until `held` drops
            });
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while contention().unwrap_or(0) == 0 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "blocked insert never counted contention"
                );
                std::thread::yield_now();
            }
            drop(held);
        });

        let snap = metrics::snapshot();
        let find = |name: &str| snap.iter().find(|m| m.name() == name).cloned();
        match find("pgas/dht/entries") {
            Some(metrics::MetricSnapshot::Gauge(_, v)) => assert_eq!(v, 80.0),
            other => panic!("missing entries gauge: {other:?}"),
        }
        match find("pgas/dht/load_factor_max") {
            Some(metrics::MetricSnapshot::Gauge(_, v)) => {
                assert!((v - 4.0).abs() < 1e-9, "all-on-one-rank placement: {v}")
            }
            other => panic!("missing load factor gauge: {other:?}"),
        }
        match find("pgas/dht/lock_contention") {
            Some(metrics::MetricSnapshot::Counter(_, n)) => {
                assert!(n >= 1, "blocked insert must count contention")
            }
            other => panic!("missing contention counter: {other:?}"),
        }

        metrics::disable();
        metrics::reset();
    }

    #[test]
    fn cyclic_placement_is_roughly_balanced() {
        let topo = Topology::new(16, 8);
        let dht: DistHashMap<u64, ()> = DistHashMap::new(topo);
        let mut c = ctx(0, topo);
        for k in 0..16_000u64 {
            dht.insert(&mut c, k, ());
        }
        let sizes = dht.shard_sizes();
        let expect = 1000.0;
        for (rank, &s) in sizes.iter().enumerate() {
            let dev = (s as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "rank {rank} has {s} entries (expect ~1000)");
        }
    }
}
