//! SPMD phase execution over virtual ranks.
//!
//! A [`Team`] runs one closure per virtual rank, exactly like a UPC program
//! runs one copy per thread. Virtual ranks are multiplexed over the host's
//! OS threads (override with `HIPMER_THREADS`), so experiments can model
//! 15,360-rank concurrencies on a laptop. Phase bodies must therefore be
//! **non-blocking with respect to other ranks**: they may share concurrent
//! data structures, but must never wait for a rank that has not run yet.
//! Every algorithm in this reproduction is written in that style (the
//! paper's own algorithms are asynchronous one-sided for the same reason:
//! to avoid synchronization and message-matching logic).
//!
//! Rank→thread placement is governed by [`Affinity`]: by default each OS
//! worker executes a **contiguous block** of ranks (`HIPMER_AFFINITY=dynamic`
//! opts out into first-come assignment). Blocked placement keeps a rank's
//! working set — its DHT sub-shards, its aggregation buffers — on one
//! worker for a whole phase, the single-process analogue of NUMA-aware
//! rank pinning (DESIGN.md §12).

use crate::fault::{self, FailureCause, FaultEvent, FaultPlan, StageAbort, StageOutcome};
use crate::stats::CommStats;
use crate::topology::Topology;
use crate::trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-rank execution context handed to a phase body.
pub struct RankCtx {
    /// This rank's id, `0..topology.ranks()`.
    pub rank: usize,
    topo: Topology,
    /// Counters the phase body and the data structures tally into.
    pub stats: CommStats,
    /// Fault schedule consulted by [`RankCtx::comm`] (set by
    /// [`Team::with_fault_plan`]; `None` = fault-free).
    faults: Option<Arc<FaultPlan>>,
    /// Label of the phase this context runs in (empty for forged
    /// contexts); names the progress pool for dynamic scheduling.
    phase: String,
}

impl RankCtx {
    /// Create a context (public so data-structure unit tests can forge one).
    pub fn new(rank: usize, topo: Topology) -> Self {
        RankCtx {
            rank,
            topo,
            stats: CommStats::new(),
            faults: None,
            phase: String::new(),
        }
    }

    /// The label of the phase this context is executing (the string passed
    /// to [`Team::run_named`]), or `""` for contexts forged outside a
    /// phase. Used to name progress pools in [`crate::metrics`].
    pub fn phase(&self) -> &str {
        &self.phase
    }

    /// Attach a fault plan to a forged context (tests; `Team` does this for
    /// real phase executions).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The machine topology this phase runs on.
    #[inline]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The contiguous chunk of `n` items this rank owns.
    #[inline]
    pub fn chunk(&self, n: usize) -> std::ops::Range<usize> {
        self.topo.chunk(n, self.rank)
    }

    /// Record participation in a barrier.
    #[inline]
    pub fn barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// Record one one-sided access from this rank to `to`'s partition.
    #[inline]
    pub fn access(&mut self, to: usize, bytes: u64) {
        let topo = self.topo;
        self.comm(&topo, to, bytes);
    }

    /// Record one classified communication event from this rank to `to`
    /// under `topo` — **the** choke point every one-sided access, batched
    /// flush, and multi-get message goes through. With no
    /// [`FaultPlan`] attached this is exactly
    /// [`CommStats::access`]; with one, remote events additionally consult
    /// the plan: a transient fault re-sends the message (re-accounted in
    /// full, with capped exponential backoff tallied in
    /// [`CommStats::backoff_units`]), and a hard fault unwinds the rank
    /// (see [`crate::fault`]).
    #[inline]
    pub fn comm(&mut self, topo: &Topology, to: usize, bytes: u64) {
        self.stats.access(topo, self.rank, to, bytes);
        if to != self.rank && self.faults.is_some() {
            self.comm_faulty(topo, to, bytes);
        }
    }

    /// Out-of-line fault path of [`RankCtx::comm`].
    #[cold]
    fn comm_faulty(&mut self, topo: &Topology, to: usize, bytes: u64) {
        let plan = self.faults.clone().expect("checked by caller");
        let mut attempt = 0u32;
        loop {
            match plan.on_remote_event(self.rank) {
                FaultEvent::Delivered => return,
                FaultEvent::Kill => FaultPlan::fail_rank(self.rank, FailureCause::Injected),
                FaultEvent::Transient => {
                    attempt += 1;
                    self.stats.transient_faults += 1;
                    if attempt > plan.max_retries() {
                        FaultPlan::fail_rank(self.rank, FailureCause::RetryBudgetExhausted);
                    }
                    self.stats.retries += 1;
                    self.stats.backoff_units += 1u64 << (attempt - 1).min(plan.backoff_cap());
                    // The re-sent message pays latency and bytes again.
                    self.stats.access(topo, self.rank, to, bytes);
                }
            }
        }
    }
}

/// How virtual ranks are placed onto OS worker threads for a phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Affinity {
    /// Each worker executes one contiguous block of ranks (worker `w` of
    /// `W` runs ranks `w·P/W .. (w+1)·P/W`). The default: a rank's working
    /// set stays on one thread for the whole phase, and consecutive ranks —
    /// whose DHT partitions are adjacent — share a worker's caches. This is
    /// the thread-affinity analogue of NUMA-aware rank placement on a real
    /// PGAS machine.
    Blocked,
    /// First-come assignment from a shared atomic counter: whichever worker
    /// is free takes the next rank. Opt out of blocked placement with
    /// `HIPMER_AFFINITY=dynamic` (or `0`/`off`) when rank bodies are so
    /// skewed that block-level imbalance dominates cache affinity.
    Dynamic,
}

/// An SPMD team of virtual ranks.
#[derive(Clone, Debug)]
pub struct Team {
    topo: Topology,
    os_threads: usize,
    affinity: Affinity,
    faults: Option<Arc<FaultPlan>>,
    recorder: Option<trace::Recorder>,
}

/// Number of OS worker threads to use (env `HIPMER_THREADS`, else the
/// host's available parallelism).
fn default_os_threads() -> usize {
    if let Ok(v) = std::env::var("HIPMER_THREADS") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            Ok(0) => {
                eprintln!("hipmer: HIPMER_THREADS=0 is not runnable; clamping to 1 thread");
                return 1;
            }
            _ => eprintln!(
                "hipmer: ignoring HIPMER_THREADS={v:?} (expected a positive \
                 integer); falling back to available parallelism"
            ),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Rank→thread placement (env `HIPMER_AFFINITY`; default blocked).
/// `dynamic`, `off`, or `0` opt out into first-come assignment.
fn default_affinity() -> Affinity {
    if let Ok(v) = std::env::var("HIPMER_AFFINITY") {
        match v.to_ascii_lowercase().as_str() {
            "dynamic" | "off" | "0" => return Affinity::Dynamic,
            "blocked" | "on" | "1" => return Affinity::Blocked,
            other => eprintln!(
                "hipmer: ignoring HIPMER_AFFINITY={other:?} (expected \
                 blocked|dynamic); using blocked placement"
            ),
        }
    }
    Affinity::Blocked
}

/// Execute one rank's phase body, stamping measured execution time into its
/// stats and producing a trace span when this rank is sampled. A
/// [`fault::RankFailure`] unwinding out of the body is caught and reported
/// in the fourth slot (`None` result); any other panic resumes unwinding.
fn run_rank<R, F>(
    f: &F,
    rank: usize,
    topo: Topology,
    faults: Option<&Arc<FaultPlan>>,
    phase_start: Instant,
    phase: &str,
    label: Option<&str>,
) -> (
    Option<R>,
    CommStats,
    Option<trace::SpanEvent>,
    Option<fault::RankFailure>,
)
where
    F: Fn(&mut RankCtx) -> R,
{
    let rank_start = Instant::now();
    let mut ctx = RankCtx::new(rank, topo);
    ctx.phase = phase.to_string();
    if let Some(plan) = faults {
        ctx.faults = Some(Arc::clone(plan));
    }
    // AssertUnwindSafe: on unwind only `ctx.stats` is read, and counters
    // are plain integers that stay valid mid-phase.
    let (out, failure) = match catch_unwind(AssertUnwindSafe(|| f(&mut ctx))) {
        Ok(v) => (Some(v), None),
        Err(payload) => match payload.downcast::<fault::RankFailure>() {
            Ok(rf) => (None, Some(*rf)),
            Err(other) => std::panic::resume_unwind(other),
        },
    };
    ctx.barrier();
    let dur_nanos = rank_start.elapsed().as_nanos() as u64;
    ctx.stats.exec_nanos = dur_nanos;
    let span = label.map(|label| trace::SpanEvent {
        phase: label.to_string(),
        rank,
        start_nanos: rank_start
            .saturating_duration_since(trace::epoch())
            .as_nanos() as u64,
        dur_nanos,
        queue_nanos: rank_start.saturating_duration_since(phase_start).as_nanos() as u64,
        barriers: ctx.stats.barriers,
        lookup_batches: ctx.stats.lookup_batches,
        cache_hits: ctx.stats.cache_hits,
        cache_misses: ctx.stats.cache_misses,
        transient_faults: ctx.stats.transient_faults,
        retries: ctx.stats.retries,
        steal_ops: ctx.stats.steal_ops,
    });
    (out, ctx.stats, span, failure)
}

impl Team {
    /// A team over the given topology, with default OS-thread multiplexing.
    pub fn new(topo: Topology) -> Self {
        Team {
            topo,
            os_threads: default_os_threads(),
            affinity: default_affinity(),
            faults: None,
            recorder: None,
        }
    }

    /// Override rank→thread placement for this team (the environment
    /// default comes from `HIPMER_AFFINITY`; see [`Affinity`]).
    pub fn with_affinity(mut self, affinity: Affinity) -> Self {
        self.affinity = affinity;
        self
    }

    /// The rank→thread placement this team uses.
    pub fn affinity(&self) -> Affinity {
        self.affinity
    }

    /// Attach a per-team span [`trace::Recorder`]: every phase of this team
    /// records spans there unconditionally (the recorder's existence is the
    /// enable flag), and never touches the process-global trace buffer.
    /// Without one, the team falls back to the global
    /// [`trace::is_enabled`] / [`trace::record`] machinery.
    pub fn with_recorder(mut self, recorder: trace::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Override the number of OS worker threads (mostly for tests).
    ///
    /// `0` is clamped to `1` with a warning — a zero-worker scope would
    /// never run any rank.
    pub fn with_os_threads(mut self, n: usize) -> Self {
        if n == 0 {
            eprintln!("hipmer: Team::with_os_threads(0) is not runnable; clamping to 1 thread");
        }
        self.os_threads = n.max(1);
        self
    }

    /// Arm this team with a fault-injection schedule: every remote
    /// communication event of every phase consults `plan` (see
    /// [`crate::fault`]). The plan is shared, so event counters persist
    /// across phases and across team clones.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        assert_eq!(
            plan.events_len(),
            self.topo.ranks(),
            "fault plan must cover every rank"
        );
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The topology this team executes on.
    #[inline]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Number of virtual ranks.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.topo.ranks()
    }

    /// Execute one SPMD phase: `f` runs once per virtual rank. Returns the
    /// per-rank results and per-rank communication counters, both indexed by
    /// rank.
    ///
    /// Identical to [`Team::run_named`] with the placeholder label
    /// `"phase"`; pipeline stages should prefer `run_named` so traces and
    /// reports carry meaningful names.
    pub fn run<R, F>(&self, f: F) -> (Vec<R>, Vec<CommStats>)
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        self.run_named("phase", f)
    }

    /// Execute one named SPMD phase: `f` runs once per virtual rank.
    /// Returns the per-rank results and per-rank communication counters,
    /// both indexed by rank.
    ///
    /// The implicit barrier at phase end is recorded in every rank's stats,
    /// and each rank's measured execution time is stamped into
    /// [`CommStats::exec_nanos`]. When [`crate::trace`] is enabled, a span
    /// per sampled rank is recorded under `label`.
    pub fn run_named<R, F>(&self, label: &str, f: F) -> (Vec<R>, Vec<CommStats>)
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        match self.try_run_named(label, f) {
            StageOutcome::Completed(results, stats) => (results, stats),
            StageOutcome::Aborted(abort) => fault::raise_stage_abort(abort),
        }
    }

    /// As [`Team::run_named`], but an injected rank failure is returned as
    /// [`StageOutcome::Aborted`] instead of panicking. Every rank still
    /// executes (a real failure detector also lags the failure; phase
    /// bodies are non-blocking, so survivors always finish); the aborted
    /// attempt's per-rank results and counters are discarded with the
    /// outcome.
    pub fn try_run_named<R, F>(&self, label: &str, f: F) -> StageOutcome<R>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        let ranks = self.topo.ranks();
        let workers = self.os_threads.min(ranks);
        let next = AtomicUsize::new(0);
        type Bucket<R> = Vec<(usize, Option<R>, CommStats, Option<fault::RankFailure>)>;
        let mut collected: Vec<Bucket<R>> = Vec::with_capacity(workers);

        let phase_start = Instant::now();
        let (tracing, sample) = match &self.recorder {
            Some(recorder) => (true, recorder.sample_ranks()),
            None => (trace::is_enabled(), trace::sample_ranks()),
        };
        let span_label = |rank: usize| (tracing && rank < sample).then_some(label);
        let record_spans = |spans: Vec<trace::SpanEvent>| {
            if spans.is_empty() {
                return;
            }
            match &self.recorder {
                Some(recorder) => recorder.record(spans),
                None => trace::record(spans),
            }
        };
        let faults = self.faults.as_ref();

        // Blocked placement: worker `w` owns one contiguous rank block.
        let base = ranks / workers;
        let rem = ranks % workers;
        let block = |w: usize| {
            let start = w * base + w.min(rem);
            start..start + base + usize::from(w < rem)
        };

        // Workers inherit the spawning thread's metric scope, so a phase
        // run on behalf of one job of a multi-tenant server records its
        // counters under that job's label (see `metrics::scoped`).
        let metric_scope = crate::metrics::current_scope();

        if workers <= 1 {
            let mut local = Vec::with_capacity(ranks);
            let mut spans = Vec::new();
            for rank in 0..ranks {
                let (out, stats, span, failure) = run_rank(
                    &f,
                    rank,
                    self.topo,
                    faults,
                    phase_start,
                    label,
                    span_label(rank),
                );
                spans.extend(span);
                local.push((rank, out, stats, failure));
            }
            record_spans(spans);
            collected.push(local);
        } else {
            let affinity = self.affinity;
            let worker_outputs = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let next = &next;
                        let f = &f;
                        let span_label = &span_label;
                        let record_spans = &record_spans;
                        let block = &block;
                        let topo = self.topo;
                        let metric_scope = metric_scope.clone();
                        scope.spawn(move |_| {
                            let _scope_guard = crate::metrics::inherit_scope(metric_scope);
                            let mut local = Vec::new();
                            let mut spans = Vec::new();
                            let run_one =
                                |rank: usize,
                                 local: &mut Bucket<R>,
                                 spans: &mut Vec<trace::SpanEvent>| {
                                    let (out, stats, span, failure) = run_rank(
                                        f,
                                        rank,
                                        topo,
                                        faults,
                                        phase_start,
                                        label,
                                        span_label(rank),
                                    );
                                    spans.extend(span);
                                    local.push((rank, out, stats, failure));
                                };
                            match affinity {
                                Affinity::Blocked => {
                                    for rank in block(w) {
                                        run_one(rank, &mut local, &mut spans);
                                    }
                                }
                                Affinity::Dynamic => loop {
                                    let rank = next.fetch_add(1, Ordering::Relaxed);
                                    if rank >= ranks {
                                        break;
                                    }
                                    run_one(rank, &mut local, &mut spans);
                                },
                            }
                            record_spans(spans);
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("phase body panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("team scope panicked");
            collected = worker_outputs;
        }

        // Any dead rank aborts the stage; pick the lowest rank so the
        // reported failure is deterministic across OS-thread schedules.
        if let Some(failure) = collected
            .iter()
            .flatten()
            .filter_map(|(_, _, _, failure)| *failure)
            .min_by_key(|failure| failure.rank)
        {
            return StageOutcome::Aborted(StageAbort {
                phase: label.to_string(),
                rank: failure.rank,
                cause: failure.cause,
            });
        }

        let mut slots: Vec<Option<(R, CommStats)>> = (0..ranks).map(|_| None).collect();
        for bucket in collected {
            for (rank, out, stats, _) in bucket {
                debug_assert!(slots[rank].is_none());
                let out = out.expect("no failure implies a result");
                slots[rank] = Some((out, stats));
            }
        }
        let mut results = Vec::with_capacity(ranks);
        let mut stats = Vec::with_capacity(ranks);
        for slot in slots {
            let (r, s) = slot.expect("every rank executed exactly once");
            results.push(r);
            stats.push(s);
        }
        // Host wall time of the whole phase (all ranks, all workers) —
        // one histogram observation per completed phase.
        crate::metrics::observe(
            "pgas/team/phase_nanos",
            phase_start.elapsed().as_nanos() as u64,
        );
        StageOutcome::Completed(results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rank_runs_exactly_once() {
        let team = Team::new(Topology::new(100, 24)).with_os_threads(4);
        let (ranks_seen, stats) = team.run(|ctx| ctx.rank);
        assert_eq!(ranks_seen, (0..100).collect::<Vec<_>>());
        assert_eq!(stats.len(), 100);
        assert!(stats.iter().all(|s| s.barriers == 1));
    }

    #[test]
    fn serial_fallback_matches() {
        let team = Team::new(Topology::new(7, 24)).with_os_threads(1);
        let (out, _) = team.run(|ctx| ctx.rank * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn stats_are_attributed_to_the_acting_rank() {
        let team = Team::new(Topology::new(8, 4)).with_os_threads(3);
        let (_, stats) = team.run(|ctx| {
            ctx.stats.compute(ctx.rank as u64);
        });
        for (rank, s) in stats.iter().enumerate() {
            assert_eq!(s.compute_ops, rank as u64);
        }
    }

    #[test]
    fn chunks_cover_input() {
        let team = Team::new(Topology::new(13, 24)).with_os_threads(2);
        let n = 1000;
        let (chunks, _) = team.run(|ctx| ctx.chunk(n));
        let mut covered = 0;
        for c in chunks {
            assert_eq!(c.start, covered);
            covered = c.end;
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn exec_nanos_are_stamped_for_every_rank() {
        let team = Team::new(Topology::new(4, 4)).with_os_threads(2);
        let (_, stats) = team.run_named("test/exec-nanos", |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert!(stats.iter().all(|s| s.exec_nanos >= 1_000_000), "{stats:?}");
    }

    #[test]
    fn tracing_records_spans_for_sampled_ranks_only() {
        // Per-team recorder: no process-global state, no test serialization.
        let label = "test/tracing-sampled-spans";
        let recorder = crate::trace::Recorder::new(2);
        let team = Team::new(Topology::new(8, 4))
            .with_os_threads(3)
            .with_recorder(recorder.clone());
        team.run_named(label, |ctx| {
            ctx.barrier();
            ctx.rank
        });
        let mine = recorder.take_events();
        assert!(mine.iter().all(|e| e.phase == label));
        let mut ranks: Vec<usize> = mine.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1], "only sampled ranks recorded");
        for e in &mine {
            assert_eq!(e.barriers, 2, "explicit + implicit barrier");
            assert!(e.dur_nanos > 0);
        }
    }

    #[test]
    fn recorder_with_zero_sample_captures_every_rank() {
        let recorder = crate::trace::Recorder::new(0);
        let team = Team::new(Topology::new(5, 4))
            .with_os_threads(2)
            .with_recorder(recorder.clone());
        team.run_named("test/tracing-all-ranks", |ctx| ctx.rank);
        let mut ranks: Vec<usize> = recorder.take_events().iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn team_without_recorder_records_nothing_for_this_phase() {
        let label = "test/tracing-disabled";
        let team = Team::new(Topology::new(4, 4)).with_os_threads(2);
        team.run_named(label, |ctx| ctx.rank);
        // Don't drain the global buffer (a concurrent test may be
        // tracing); just check nothing carries this label.
        let stolen: Vec<_> = crate::trace::take_events();
        assert!(stolen.iter().all(|e| e.phase != label));
        crate::trace::record(stolen); // put concurrent tests' spans back
    }

    #[test]
    fn blocked_and_dynamic_affinity_both_cover_every_rank() {
        for affinity in [Affinity::Blocked, Affinity::Dynamic] {
            // 13 ranks over 4 workers: uneven blocks (4,3,3,3).
            let team = Team::new(Topology::new(13, 4))
                .with_os_threads(4)
                .with_affinity(affinity);
            let (ranks_seen, stats) = team.run(|ctx| ctx.rank);
            assert_eq!(ranks_seen, (0..13).collect::<Vec<_>>(), "{affinity:?}");
            assert_eq!(stats.len(), 13);
        }
    }

    #[test]
    fn affinity_env_opt_out_selects_dynamic() {
        std::env::set_var("HIPMER_AFFINITY", "dynamic");
        let dynamic = Team::new(Topology::new(4, 2));
        std::env::set_var("HIPMER_AFFINITY", "blocked");
        let blocked = Team::new(Topology::new(4, 2));
        std::env::remove_var("HIPMER_AFFINITY");
        let default = Team::new(Topology::new(4, 2));
        assert_eq!(dynamic.affinity(), Affinity::Dynamic);
        assert_eq!(blocked.affinity(), Affinity::Blocked);
        assert_eq!(default.affinity(), Affinity::Blocked);
    }

    /// PR 7 satellite: deterministic stage-abort selection must hold while
    /// ranks run async (deferred-send) traffic, across OS thread counts.
    #[test]
    fn abort_selection_is_deterministic_under_async_drains_across_threads() {
        use crate::agg::AggregatingStores;
        use crate::dht::DistHashMap;

        let topo = Topology::new(8, 4);
        let run_with = |threads: usize| {
            // Fresh plan per run: the kill is latched (one-shot).
            let plan = FaultPlan::new(42, topo.ranks()).with_rank_failure(5, 30);
            let team = Team::new(topo)
                .with_os_threads(threads)
                .with_fault_plan(Arc::new(plan));
            let dht: DistHashMap<u64, u64> = DistHashMap::new(topo);
            team.try_run_named("test/async-abort", |ctx| {
                let mut agg =
                    AggregatingStores::with_batch(&dht, |acc: &mut u64, v: u64| *acc += v, 4);
                for i in 0..200u64 {
                    agg.push(ctx, i * 7, 1);
                }
                let _completion = agg.flush_async(ctx);
                agg.finish(ctx);
            })
        };
        let mut aborted_ranks = Vec::new();
        for threads in [1usize, 4, 8] {
            match run_with(threads) {
                StageOutcome::Aborted(abort) => {
                    assert_eq!(abort.phase, "test/async-abort");
                    aborted_ranks.push(abort.rank);
                }
                StageOutcome::Completed(..) => {
                    panic!("stage must abort at {threads} threads")
                }
            }
        }
        assert_eq!(
            aborted_ranks,
            vec![aborted_ranks[0]; 3],
            "same aborting rank at 1, 4, and 8 OS threads"
        );
    }

    #[test]
    fn metric_scope_propagates_into_phase_workers() {
        let _guard = crate::metrics::TEST_LOCK.lock().unwrap();
        crate::metrics::reset();
        crate::metrics::enable();
        {
            let _job = crate::metrics::scoped("job/42");
            let team = Team::new(Topology::new(8, 4)).with_os_threads(4);
            team.run_named("test/scope", |ctx| {
                crate::metrics::counter_add("test/rank_units", ctx.rank as u64 + 1);
            });
        }
        let snap = crate::metrics::snapshot();
        crate::metrics::disable();
        crate::metrics::reset();
        let rank_units = snap
            .iter()
            .find_map(|m| match m {
                crate::metrics::MetricSnapshot::Counter(name, v)
                    if name == "job/42/test/rank_units" =>
                {
                    Some(*v)
                }
                _ => None,
            })
            .expect("counter recorded under the job scope");
        assert_eq!(rank_units, (1..=8).sum::<u64>());
        assert!(
            !snap.iter().any(|m| m.name() == "test/rank_units"),
            "nothing leaks outside the scope"
        );
        assert!(
            snap.iter()
                .any(|m| m.name() == "job/42/pgas/team/phase_nanos"),
            "the team's own phase histogram is scoped too"
        );
    }

    #[test]
    fn shared_state_is_visible_across_ranks() {
        use std::sync::atomic::AtomicU64;
        let team = Team::new(Topology::new(64, 24)).with_os_threads(4);
        let acc = AtomicU64::new(0);
        team.run(|ctx| {
            acc.fetch_add(ctx.rank as u64, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), (0..64u64).sum());
    }

    #[test]
    fn transient_faults_retry_and_are_counted() {
        let topo = Topology::new(8, 4);
        let plan = FaultPlan::new(11, topo.ranks()).with_transient(0.05);
        let team = Team::new(topo)
            .with_os_threads(2)
            .with_fault_plan(Arc::new(plan));
        let (_, stats) = team.run_named("test/transient", |ctx| {
            for to in 0..8 {
                for _ in 0..200 {
                    ctx.access(to, 16);
                }
            }
        });
        let total = crate::stats::total(&stats);
        assert!(total.transient_faults > 0, "{total:?}");
        assert_eq!(total.transient_faults, total.retries, "all faults retried");
        assert!(total.backoff_units >= total.retries);
        // Retried messages are re-accounted: more messages than the
        // fault-free op count (8 ranks x 8 dests x 200, one local each).
        assert_eq!(
            total.total_accesses(),
            8 * 8 * 200 + total.retries,
            "each retry re-accounts its message"
        );
    }

    #[test]
    fn fault_counters_are_schedule_independent() {
        let topo = Topology::new(8, 4);
        let run_with = |threads: usize| {
            let plan = FaultPlan::new(99, topo.ranks()).with_transient(0.03);
            let team = Team::new(topo)
                .with_os_threads(threads)
                .with_fault_plan(Arc::new(plan));
            let (_, stats) = team.run_named("test/deterministic-faults", |ctx| {
                for to in 0..8 {
                    for _ in 0..300 {
                        ctx.access(to, 8);
                    }
                }
            });
            stats
        };
        // Scrub measured host time: everything else must match exactly.
        let scrub = |stats: Vec<CommStats>| {
            stats
                .into_iter()
                .map(|mut s| {
                    s.exec_nanos = 0;
                    s
                })
                .collect::<Vec<_>>()
        };
        let serial = scrub(run_with(1));
        let threaded = scrub(run_with(4));
        assert_eq!(serial, threaded, "per-rank counters identical");
        assert!(crate::stats::total(&serial).transient_faults > 0);
    }

    #[test]
    fn hard_rank_failure_aborts_the_stage() {
        let topo = Topology::new(8, 4);
        let plan = FaultPlan::new(5, topo.ranks()).with_rank_failure(3, 50);
        let team = Team::new(topo)
            .with_os_threads(3)
            .with_fault_plan(Arc::new(plan));
        let body = |ctx: &mut RankCtx| {
            for to in 0..8 {
                for _ in 0..100 {
                    ctx.access(to, 16);
                }
            }
            ctx.rank
        };
        match team.try_run_named("test/hard-kill", body) {
            StageOutcome::Aborted(abort) => {
                assert_eq!(abort.phase, "test/hard-kill");
                assert_eq!(abort.rank, 3);
                assert_eq!(abort.cause, FailureCause::Injected);
            }
            StageOutcome::Completed(..) => panic!("stage must abort"),
        }
        // The kill is one-shot: the same team retries the stage and wins.
        match team.try_run_named("test/hard-kill-retry", body) {
            StageOutcome::Completed(results, stats) => {
                assert_eq!(results, (0..8).collect::<Vec<_>>());
                assert_eq!(stats.len(), 8);
            }
            StageOutcome::Aborted(a) => panic!("retry must complete: {a}"),
        }
    }

    #[test]
    fn run_named_raises_catchable_stage_abort() {
        let topo = Topology::new(4, 4);
        let plan = FaultPlan::new(1, topo.ranks()).with_rank_failure(1, 0);
        let team = Team::new(topo)
            .with_os_threads(1)
            .with_fault_plan(Arc::new(plan));
        let caught = fault::catch_stage_abort(|| {
            team.run_named("test/raise-abort", |ctx| {
                ctx.access((ctx.rank + 1) % 4, 8);
            })
        });
        let abort = caught.expect_err("must abort");
        assert_eq!(abort.rank, 1);
        assert_eq!(abort.phase, "test/raise-abort");
    }

    #[test]
    fn retry_budget_exhaustion_escalates_to_abort() {
        let topo = Topology::new(2, 2);
        // Probability 1.0: every delivery attempt faults, so the budget
        // must run out and escalate to a hard failure.
        let plan = FaultPlan::new(3, topo.ranks())
            .with_transient(1.0)
            .with_max_retries(2);
        let team = Team::new(topo)
            .with_os_threads(1)
            .with_fault_plan(Arc::new(plan));
        match team.try_run_named("test/budget", |ctx| {
            ctx.access((ctx.rank + 1) % 2, 8);
        }) {
            StageOutcome::Aborted(abort) => {
                assert_eq!(abort.cause, FailureCause::RetryBudgetExhausted);
                assert_eq!(abort.rank, 0, "lowest failing rank reported");
            }
            StageOutcome::Completed(..) => panic!("stage must abort"),
        }
    }

    #[test]
    #[should_panic(expected = "fault plan must cover every rank")]
    fn fault_plan_arity_is_checked() {
        let plan = FaultPlan::new(0, 4);
        let _ = Team::new(Topology::new(8, 4)).with_fault_plan(Arc::new(plan));
    }

    #[test]
    fn zero_os_threads_clamps_to_one_and_still_runs() {
        // Regression: `with_os_threads(0)` used to assert; it must clamp
        // to a single worker and execute every rank.
        let team = Team::new(Topology::new(4, 2)).with_os_threads(0);
        let (results, _) = team.run(|ctx| ctx.rank);
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hipmer_threads_zero_env_clamps_to_one() {
        // `default_os_threads` reads the env each `Team::new`; other tests
        // in this binary do not depend on HIPMER_THREADS being unset, and
        // a clamped value of 1 is valid for any concurrently-built team.
        std::env::set_var("HIPMER_THREADS", "0");
        let team = Team::new(Topology::new(3, 2));
        let (results, _) = team.run(|ctx| ctx.rank);
        std::env::remove_var("HIPMER_THREADS");
        assert_eq!(results, vec![0, 1, 2]);
    }
}
