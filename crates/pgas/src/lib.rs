//! A PGAS (Partitioned Global Address Space) runtime *simulator* for the
//! HipMer reproduction.
//!
//! HipMer is written in UPC and runs SPMD on up to 15,360 Cray XC30 cores;
//! its algorithms communicate through distributed hash tables accessed with
//! one-sided gets/puts. This crate reproduces that execution model in a
//! single process:
//!
//! * a [`Team`] executes an SPMD phase for *P* **virtual ranks**,
//!   multiplexed over however many OS threads the host has;
//! * a [`DistHashMap`] is sharded by owner rank exactly like a UPC
//!   distributed hash table; every access is classified **local**,
//!   **on-node**, or **off-node** from the acting rank, the owning rank,
//!   and the configured ranks-per-node, and tallied in per-rank
//!   [`CommStats`];
//! * [`AggregatingStores`] implements the paper's "aggregating stores"
//!   optimization: per-destination batching of fine-grained updates;
//! * [`LookupBatch`] and [`SoftwareCache`] are the read-side counterparts
//!   (§4.4's seed-index batching and contig caching): batched multi-gets
//!   that pay one message of latency per buffer, and a per-rank CLOCK
//!   cache for immutable-after-build tables;
//! * a [`CostModel`] converts the per-rank counters of a finished phase into
//!   modeled wall-clock seconds (critical-path max over ranks, plus barrier
//!   and I/O terms with aggregate-bandwidth saturation).
//!
//! The algorithms therefore run *for real* — the assembler output is genuine
//! — while scaling experiments at paper-scale concurrencies (480…20,480
//! ranks) report modeled time derived from the same event counts the Aries
//! network would have carried. `DESIGN.md` §1 documents this substitution.

#![warn(missing_docs)]

pub mod agg;
pub mod arena;
pub mod calib;
pub mod comp;
pub mod cost;
pub mod dht;
pub mod fault;
pub mod json;
pub mod lookup;
pub mod metrics;
pub mod oracle;
pub mod part;
pub mod pool;
pub mod report;
pub mod sched;
pub mod stats;
pub mod team;
pub mod topology;
pub mod trace;

pub use agg::{AggregatingStores, Outbox};
pub use arena::BufferPool;
pub use calib::Calibration;
pub use comp::Completion;
pub use cost::{CostModel, ModeledTime, RankBreakdown};
pub use dht::{DistHashMap, LocalityHash, Placement};
pub use fault::{
    catch_stage_abort, FailureCause, FaultEvent, FaultPlan, RankFailure, StageAbort, StageOutcome,
};
pub use lookup::{LookupBatch, SoftwareCache};
pub use oracle::OracleVector;
pub use part::{PartitionScheme, Partitioner, DEFAULT_MINIMIZER_LEN};
pub use pool::{TeamLease, TeamPool};
pub use report::{CheckpointEvent, PhaseReport, PipelineReport, RoundReport, StageAttempt};
pub use sched::Schedule;
pub use stats::CommStats;
pub use team::{Affinity, RankCtx, Team};
pub use topology::Topology;
pub use trace::Recorder;
