//! Async completion handles for non-blocking batched sends.
//!
//! The UPC++/MHM2 lineage the measured engine follows (PAPERS.md, SC18)
//! expresses every remote operation as an *asynchronous* injection that
//! returns immediately, with a completion object the sender synchronizes on
//! at the phase barrier. This module is that contract for the simulator's
//! batched senders ([`crate::AggregatingStores`], [`crate::LookupBatch`],
//! [`crate::Outbox`]):
//!
//! * a **flush** attempts each destination batch with the owner table's
//!   non-blocking `try_*` path
//!   ([`DistHashMap::try_merge_batch`](crate::DistHashMap::try_merge_batch),
//!   [`DistHashMap::try_fetch_batch`](crate::DistHashMap::try_fetch_batch)).
//!   A batch whose sub-shard lock is free lands immediately; a contended
//!   batch is **parked** on the sender instead of stalling the worker, and
//!   the sender's compute continues — communication overlapped with
//!   compute;
//! * the returned [`Completion`] says how much landed and how much was
//!   parked; `pgas/comp/deferred_sends` in [`crate::metrics`] counts parks
//!   globally;
//! * before the phase barrier the sender **drains**: parked batches are
//!   re-applied with the blocking path (by then the contending worker has
//!   moved on, so the wait is short). `finish`/`flush_all` drain
//!   implicitly, so the PR 3 invariants are unchanged: `finish` still
//!   hard-asserts nothing is pending, `abandon()` still discards parked
//!   work on a stage abort, and the `Drop` debug-assert still catches
//!   forgotten senders.
//!
//! Accounting is attempt-deterministic: a batch's message and bytes are
//! charged when it is first *shipped* (attempted), never again when a
//! parked batch drains. Per-rank [`CommStats`](crate::CommStats) therefore
//! depend only on the rank's own push sequence — not on which locks
//! happened to be contended — which is what keeps counters byte-identical
//! across OS-thread schedules (DESIGN.md §12's determinism argument).

use crate::metrics;

/// Outcome summary of a non-blocking flush: how many destination batches
/// landed immediately and how many were parked for the drain.
///
/// Handles from successive flushes of the same sender can be
/// [`merge`](Completion::merge)d into a phase-level summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Completion {
    shipped: u64,
    deferred: u64,
}

impl Completion {
    /// A completion with nothing attempted yet.
    pub fn new() -> Self {
        Completion::default()
    }

    /// Record one batch that landed on the first (non-blocking) attempt.
    #[inline]
    pub fn record_shipped(&mut self) {
        self.shipped += 1;
    }

    /// Record one batch parked behind a contended owner lock. Also counts
    /// one `pgas/comp/deferred_sends` tick in the metrics registry.
    #[inline]
    pub fn record_deferred(&mut self) {
        self.deferred += 1;
        metrics::counter_add("pgas/comp/deferred_sends", 1);
    }

    /// Fold another completion into this one.
    pub fn merge(&mut self, other: Completion) {
        self.shipped += other.shipped;
        self.deferred += other.deferred;
    }

    /// Batches that landed on their first attempt.
    pub fn shipped(&self) -> u64 {
        self.shipped
    }

    /// Batches parked for the phase-barrier drain.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Whether every attempted batch landed immediately (nothing parked).
    pub fn all_shipped(&self) -> bool {
        self.deferred == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_merge() {
        let mut a = Completion::new();
        assert!(a.all_shipped());
        a.record_shipped();
        a.record_shipped();
        a.record_deferred();
        assert_eq!(a.shipped(), 2);
        assert_eq!(a.deferred(), 1);
        assert!(!a.all_shipped());

        let mut b = Completion::new();
        b.record_shipped();
        b.merge(a);
        assert_eq!(b.shipped(), 3);
        assert_eq!(b.deferred(), 1);
    }
}
