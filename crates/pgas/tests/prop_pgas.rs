//! Property tests for the PGAS runtime simulator.

use hipmer_pgas::{
    AggregatingStores, CommStats, CostModel, DistHashMap, OracleVector, RankCtx, Team, Topology,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn chunks_tile_any_input(ranks in 1usize..64, rpn in 1usize..32, n in 0usize..10_000) {
        let topo = Topology::new(ranks, rpn);
        let mut covered = 0usize;
        for r in 0..ranks {
            let c = topo.chunk(n, r);
            prop_assert_eq!(c.start, covered);
            covered = c.end;
        }
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn dht_agrees_with_reference_hashmap(ops in prop::collection::vec((0u64..64, 0u32..100), 0..300)) {
        let topo = Topology::new(6, 3);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut ctx = RankCtx::new(0, topo);
        for (k, v) in ops {
            dht.update(&mut ctx, k, || 0, |x| *x += v);
            *reference.entry(k).or_insert(0) += v;
        }
        prop_assert_eq!(dht.len(), reference.len());
        for (k, v) in reference {
            prop_assert_eq!(dht.get(&mut ctx, &k), Some(v));
        }
    }

    #[test]
    fn aggregated_and_fine_grained_updates_agree(
        keys in prop::collection::vec(0u64..200, 1..500),
        batch in 1usize..64,
    ) {
        let topo = Topology::new(8, 4);
        let fine: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let agg_t: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(2, topo);
        let mut agg = AggregatingStores::with_batch(&agg_t, |a: &mut u32, b| *a += b, batch);
        for &k in &keys {
            fine.update(&mut ctx, k, || 0, |v| *v += 1);
            agg.push(&mut ctx, k, 1);
        }
        agg.flush_all(&mut ctx);
        drop(agg);
        let mut a = fine.into_entries();
        let mut b = agg_t.into_entries();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn modeled_phase_time_is_monotone_in_work(
        base_ops in 1u64..1_000_000,
        extra in 1u64..1_000_000,
        ranks in 1usize..128,
    ) {
        let topo = Topology::new(ranks, 24);
        let model = CostModel::edison();
        let mk = |ops: u64| {
            let stats: Vec<CommStats> = (0..ranks)
                .map(|_| CommStats { compute_ops: ops, ..CommStats::default() })
                .collect();
            model.phase_time(&topo, &stats).total()
        };
        prop_assert!(mk(base_ops + extra) > mk(base_ops));
    }

    #[test]
    fn oracle_lookup_always_in_range(
        hashes in prop::collection::vec(any::<u64>(), 1..200),
        slots in 1usize..512,
        ranks in 1usize..64,
    ) {
        let mut o = OracleVector::new(slots, ranks);
        for (i, &h) in hashes.iter().enumerate() {
            o.assign(h, i % ranks);
        }
        for &h in &hashes {
            prop_assert!(o.owner(h) < ranks);
        }
        // Unseen hashes also resolve in range (cyclic fallback).
        prop_assert!(o.owner(0xdead_beef) < ranks);
    }

    #[test]
    fn team_results_ordered_by_rank(ranks in 1usize..64, threads in 1usize..6) {
        let team = Team::new(Topology::new(ranks, 8)).with_os_threads(threads);
        let (out, stats) = team.run(|ctx| ctx.rank * 3);
        prop_assert_eq!(out, (0..ranks).map(|r| r * 3).collect::<Vec<_>>());
        prop_assert_eq!(stats.len(), ranks);
    }
}
