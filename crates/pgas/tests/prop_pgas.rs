//! Property tests for the PGAS runtime simulator.

use hipmer_pgas::{
    AggregatingStores, CommStats, CostModel, DistHashMap, LookupBatch, OracleVector, RankCtx,
    SoftwareCache, Team, Topology,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn chunks_tile_any_input(ranks in 1usize..64, rpn in 1usize..32, n in 0usize..10_000) {
        let topo = Topology::new(ranks, rpn);
        let mut covered = 0usize;
        for r in 0..ranks {
            let c = topo.chunk(n, r);
            prop_assert_eq!(c.start, covered);
            covered = c.end;
        }
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn dht_agrees_with_reference_hashmap(ops in prop::collection::vec((0u64..64, 0u32..100), 0..300)) {
        let topo = Topology::new(6, 3);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut ctx = RankCtx::new(0, topo);
        for (k, v) in ops {
            dht.update(&mut ctx, k, || 0, |x| *x += v);
            *reference.entry(k).or_insert(0) += v;
        }
        prop_assert_eq!(dht.len(), reference.len());
        for (k, v) in reference {
            prop_assert_eq!(dht.get(&mut ctx, &k), Some(v));
        }
    }

    #[test]
    fn aggregated_and_fine_grained_updates_agree(
        keys in prop::collection::vec(0u64..200, 1..500),
        batch in 1usize..64,
    ) {
        let topo = Topology::new(8, 4);
        let fine: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let agg_t: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(2, topo);
        let mut agg = AggregatingStores::with_batch(&agg_t, |a: &mut u32, b| *a += b, batch);
        for &k in &keys {
            fine.update(&mut ctx, k, || 0, |v| *v += 1);
            agg.push(&mut ctx, k, 1);
        }
        agg.flush_all(&mut ctx);
        drop(agg);
        let mut a = fine.into_entries();
        let mut b = agg_t.into_entries();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn multi_get_matches_sequential_gets_with_fewer_messages(
        present in prop::collection::vec(0u64..300, 1..400),
        probes in prop::collection::vec(0u64..400, 2..400),
        acting in 0usize..8,
    ) {
        let topo = Topology::new(8, 4);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut setup = RankCtx::new(0, topo);
        for &k in &present {
            dht.insert(&mut setup, k, (k as u32).wrapping_mul(7));
        }

        // Fine-grained baseline: one get (one message) per key.
        let mut fine = RankCtx::new(acting, topo);
        let fine_vals: Vec<Option<u32>> =
            probes.iter().map(|k| dht.get(&mut fine, k)).collect();

        // One multi-get over the same keys, same acting rank.
        let mut bat = RankCtx::new(acting, topo);
        let batch_vals = dht.multi_get(&mut bat, &probes);

        // Byte-identical results, byte-identical bandwidth, strictly fewer
        // messages whenever any owner serves more than one key.
        prop_assert_eq!(fine_vals, batch_vals);
        prop_assert_eq!(
            fine.stats.onnode_bytes + fine.stats.offnode_bytes,
            bat.stats.onnode_bytes + bat.stats.offnode_bytes
        );
        prop_assert!(bat.stats.total_accesses() <= fine.stats.total_accesses());
        let distinct_owners = {
            let mut owners: Vec<usize> = probes.iter().map(|k| dht.owner(k)).collect();
            owners.sort_unstable();
            owners.dedup();
            owners.len()
        };
        prop_assert_eq!(bat.stats.total_accesses(), distinct_owners as u64);
        if distinct_owners < probes.len() {
            prop_assert!(bat.stats.total_accesses() < fine.stats.total_accesses());
        }
        prop_assert_eq!(bat.stats.lookup_batches, distinct_owners as u64);
        // Reads never service the owner: totals beyond setup stay zero.
        let mut svc = vec![CommStats::new(); 8];
        dht.drain_service_into(&mut svc);
        let serviced: u64 = svc.iter().map(|s| s.service_ops).sum();
        prop_assert_eq!(serviced, present.len() as u64);
    }

    #[test]
    fn streaming_lookup_batch_agrees_with_multi_get(
        present in prop::collection::vec(0u64..300, 1..300),
        probes in prop::collection::vec(0u64..400, 1..300),
        batch in 1usize..64,
    ) {
        let topo = Topology::new(6, 3);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut setup = RankCtx::new(0, topo);
        for &k in &present {
            dht.insert(&mut setup, k, k as u32);
        }
        let mut c1 = RankCtx::new(1, topo);
        let direct = dht.multi_get(&mut c1, &probes);

        let mut c2 = RankCtx::new(1, topo);
        let mut got: Vec<(usize, Option<u32>)> = Vec::new();
        let mut deliver = |_: &mut RankCtx, tag: usize, v: Option<u32>| got.push((tag, v));
        let mut lb = LookupBatch::with_batch(&dht, batch);
        for (i, &k) in probes.iter().enumerate() {
            lb.push(&mut c2, k, i, &mut deliver);
        }
        lb.finish(&mut c2, &mut deliver);
        got.sort_by_key(|(tag, _)| *tag);
        let streamed: Vec<Option<u32>> = got.into_iter().map(|(_, v)| v).collect();
        prop_assert_eq!(direct, streamed);
        prop_assert_eq!(
            c1.stats.onnode_bytes + c1.stats.offnode_bytes,
            c2.stats.onnode_bytes + c2.stats.offnode_bytes
        );
    }

    #[test]
    fn cached_reads_are_transparent(
        present in prop::collection::vec(0u64..200, 1..200),
        probes in prop::collection::vec(0u64..300, 1..500),
        capacity in 1usize..64,
    ) {
        let topo = Topology::new(4, 2);
        let dht: DistHashMap<u64, u32> = DistHashMap::new(topo);
        let mut setup = RankCtx::new(0, topo);
        for &k in &present {
            dht.insert(&mut setup, k, k as u32 ^ 0x5a5a);
        }
        let mut c = RankCtx::new(3, topo);
        let mut cache: SoftwareCache<u64, u32> = SoftwareCache::new(capacity);
        for k in &probes {
            let direct = dht.get(&mut RankCtx::new(3, topo), k);
            prop_assert_eq!(cache.get_through(&mut c, &dht, k), direct);
        }
        prop_assert!(cache.len() <= capacity);
        prop_assert_eq!(
            c.stats.cache_hits + c.stats.cache_misses,
            probes.len() as u64
        );
        // Every access the cache saved is a hit; misses fall through 1:1.
        prop_assert_eq!(
            c.stats.total_accesses() + c.stats.cache_hits,
            probes.len() as u64
        );
    }

    #[test]
    fn modeled_phase_time_is_monotone_in_work(
        base_ops in 1u64..1_000_000,
        extra in 1u64..1_000_000,
        ranks in 1usize..128,
    ) {
        let topo = Topology::new(ranks, 24);
        let model = CostModel::edison();
        let mk = |ops: u64| {
            let stats: Vec<CommStats> = (0..ranks)
                .map(|_| CommStats { compute_ops: ops, ..CommStats::default() })
                .collect();
            model.phase_time(&topo, &stats).total()
        };
        prop_assert!(mk(base_ops + extra) > mk(base_ops));
    }

    #[test]
    fn oracle_lookup_always_in_range(
        hashes in prop::collection::vec(any::<u64>(), 1..200),
        slots in 1usize..512,
        ranks in 1usize..64,
    ) {
        let mut o = OracleVector::new(slots, ranks);
        for (i, &h) in hashes.iter().enumerate() {
            o.assign(h, i % ranks);
        }
        for &h in &hashes {
            prop_assert!(o.owner(h) < ranks);
        }
        // Unseen hashes also resolve in range (cyclic fallback).
        prop_assert!(o.owner(0xdead_beef) < ranks);
    }

    #[test]
    fn team_results_ordered_by_rank(ranks in 1usize..64, threads in 1usize..6) {
        let team = Team::new(Topology::new(ranks, 8)).with_os_threads(threads);
        let (out, stats) = team.run(|ctx| ctx.rank * 3);
        prop_assert_eq!(out, (0..ranks).map(|r| r * 3).collect::<Vec<_>>());
        prop_assert_eq!(stats.len(), ranks);
    }
}
