//! Contig generation: distributed de Bruijn graph construction and
//! traversal (§2 stage 2, communication-avoiding algorithm §3.2).
//!
//! The UU k-mers from k-mer analysis are the graph's vertices; edges are
//! implicit in the two-letter extension code (`[ACGT][ACGT]`). The graph
//! lives in a distributed hash table and is traversed in parallel: every
//! extension step is one hash-table lookup, which with uniform placement is
//! almost always remote — the O(G) message bottleneck the paper's oracle
//! partitioning attacks.
//!
//! Traversal here is the *deterministic endpoint-walk* formulation: each
//! rank scans its local shard for path endpoints (k-mers whose
//! left-neighbor link is absent or non-mutual), walks right from each
//! endpoint emitting one base per lookup, and a tie-break on the endpoint
//! pair ensures every maximal path is emitted exactly once regardless of
//! schedule. Cyclic components (no endpoints) are swept in a cleanup pass.
//! This has the same per-extension communication profile as the paper's
//! speculative-seed traversal (one lookup per explored vertex) while being
//! schedule-independent, which the oracle experiments (Tables 1–2) rely on
//! for apples-to-apples counter comparisons. A speculative-seed mode in
//! the paper's style is provided as [`traverse::speculative`] for the
//! ablation benches.

pub mod contig_set;
pub mod graph;
pub mod oracle_build;
pub mod traverse;

pub use contig_set::{Contig, ContigSet};
pub use graph::{build_graph, DebruijnGraph, GraphNode};
pub use oracle_build::{build_oracle, build_oracle_for_k, kmer_placement_hash};
pub use traverse::{generate_contigs, prune_hairs, traverse_graph, ContigConfig, TraversalMode};
