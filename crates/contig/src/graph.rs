//! De Bruijn graph construction in a distributed hash table.

use hipmer_dna::{ExtensionPair, Kmer, KmerCodec};
use hipmer_kanalysis::KmerSpectrum;
use hipmer_pgas::{DistHashMap, Partitioner, PhaseReport, Placement, Team};

/// A graph vertex: one UU k-mer with its unique extensions.
#[derive(Clone, Copy, Debug)]
pub struct GraphNode {
    /// Extension decision in canonical orientation (always `is_uu()` for
    /// vertices admitted to the graph).
    pub exts: ExtensionPair,
    /// Exact k-mer count, carried along for contig depth.
    pub count: u32,
    /// Claim flag for the traversal's lightweight synchronization: set
    /// when a subcontig has consumed this vertex (also used as the
    /// visited mark by the endpoint-walk and cycle passes).
    pub visited: bool,
}

/// The distributed de Bruijn graph.
pub struct DebruijnGraph {
    /// Canonical UU k-mer → node.
    pub nodes: DistHashMap<Kmer, GraphNode>,
    /// K-mer codec.
    pub codec: KmerCodec,
}

/// Build the graph from a finished k-mer spectrum, placing vertices with
/// `placement` ([`Placement::Cyclic`] for the baseline; an oracle placement
/// for the communication-avoiding traversal) and, under `Cyclic`, the
/// partitioner's locality hash (minimizer bucketing). An oracle
/// `Placement::Custom` supersedes the partitioner: the oracle already
/// encodes a (stronger, contig-exact) locality decision per hash, so
/// installing a second locality layer under it would only re-home the
/// k-mers the oracle deliberately grouped.
///
/// Only UU k-mers become vertices (§2: "for k-mers where the extensions
/// are \[unique\] in both directions"). Each rank streams its local spectrum
/// shard into the graph table; with matching spectrum→graph placement this
/// is mostly rank-local, while an oracle placement reshuffles vertices to
/// their contig's rank (paying the one-time movement the paper folds into
/// graph construction).
pub fn build_graph(
    team: &Team,
    spectrum: &KmerSpectrum,
    placement: Placement,
    partitioner: Partitioner,
) -> (DebruijnGraph, PhaseReport) {
    let apply_locality = matches!(placement, Placement::Cyclic);
    let nodes: DistHashMap<Kmer, GraphNode> = DistHashMap::with_placement(*team.topo(), placement);
    let nodes = if apply_locality {
        match partitioner.locality_hash(spectrum.codec) {
            Some(f) => nodes.with_locality_hash(f),
            None => nodes,
        }
    } else {
        nodes
    };

    let (_, mut stats) = team.run_named("contig/graph-build", |ctx| {
        let mut uu: Vec<(Kmer, GraphNode)> = Vec::new();
        spectrum.table.fold_local(ctx, (), |(), km, entry| {
            if entry.exts.is_uu() {
                uu.push((
                    *km,
                    GraphNode {
                        exts: entry.exts,
                        count: entry.count,
                        visited: false,
                    },
                ));
            }
        });
        for (km, node) in uu {
            nodes.insert(ctx, km, node);
        }
    });
    nodes.drain_service_into(&mut stats);
    let label = if apply_locality {
        partitioner.label()
    } else {
        "oracle".to_string()
    };
    let report = PhaseReport::new("contig/graph-build", *team.topo(), stats).with_placement(label);
    (
        DebruijnGraph {
            nodes,
            codec: spectrum.codec,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_dna::{ExtChoice, ExtVotes};
    use hipmer_kanalysis::KmerEntry;
    use hipmer_pgas::{RankCtx, Topology};

    /// Build a spectrum by hand from (kmer string, left, right) triples.
    fn spectrum_from(
        topo: Topology,
        k: usize,
        entries: &[(&str, ExtChoice, ExtChoice)],
    ) -> KmerSpectrum {
        let codec = KmerCodec::new(k);
        let table = DistHashMap::new(topo);
        let mut ctx = RankCtx::new(0, topo);
        for (s, l, r) in entries {
            let km = codec.pack(s.as_bytes()).unwrap();
            let canon = codec.canonical(km);
            // Re-orient the given (forward-sense) extensions to canonical.
            let fwd = ExtensionPair {
                left: *l,
                right: *r,
            };
            let exts = if canon == km { fwd } else { fwd.flip() };
            table.insert(&mut ctx, canon, KmerEntry { count: 3, exts });
        }
        let _ = ExtVotes::new();
        KmerSpectrum { codec, table }
    }

    #[test]
    fn only_uu_kmers_become_vertices() {
        let topo = Topology::new(2, 2);
        let team = Team::new(topo);
        let spectrum = spectrum_from(
            topo,
            3,
            &[
                // Distinct canonical 3-mers (note CGT canonicalizes to ACG,
                // so it must not be reused here).
                ("ACG", ExtChoice::Unique(3), ExtChoice::Unique(0)), // UU
                ("CCG", ExtChoice::Fork, ExtChoice::Unique(1)),      // FU
                ("GTA", ExtChoice::Unique(2), ExtChoice::None),      // UX
            ],
        );
        let (graph, _) = build_graph(&team, &spectrum, Placement::Cyclic, Partitioner::Uniform);
        assert_eq!(graph.nodes.len(), 1);
        let mut ctx = RankCtx::new(0, topo);
        let codec = KmerCodec::new(3);
        let acg = codec.canonical(codec.pack(b"ACG").unwrap());
        assert!(graph.nodes.get(&mut ctx, &acg).is_some());
    }

    #[test]
    fn custom_placement_moves_vertices() {
        let topo = Topology::new(4, 2);
        let team = Team::new(topo);
        let spectrum = spectrum_from(
            topo,
            3,
            &[
                ("ACG", ExtChoice::Unique(3), ExtChoice::Unique(0)),
                ("CCG", ExtChoice::Unique(3), ExtChoice::Unique(0)),
                ("GCG", ExtChoice::Unique(3), ExtChoice::Unique(0)),
            ],
        );
        let everything_on_3 = Placement::Custom(std::sync::Arc::new(|_h| 3usize));
        let (graph, _) = build_graph(&team, &spectrum, everything_on_3, Partitioner::Uniform);
        assert_eq!(graph.nodes.shard_sizes(), vec![0, 0, 0, 3]);
    }

    #[test]
    fn minimizer_partitioner_rehomes_vertices_under_cyclic_only() {
        let topo = Topology::new(4, 2);
        let team = Team::new(topo);
        let spectrum = spectrum_from(
            topo,
            3,
            &[
                ("ACG", ExtChoice::Unique(3), ExtChoice::Unique(0)),
                ("CCG", ExtChoice::Unique(3), ExtChoice::Unique(0)),
                ("GCG", ExtChoice::Unique(3), ExtChoice::Unique(0)),
            ],
        );
        let part = Partitioner::new(hipmer_pgas::PartitionScheme::Minimizer, 3);
        // Cyclic placement: the partitioner's locality hash decides owners.
        let (graph, _) = build_graph(&team, &spectrum, Placement::Cyclic, part);
        assert!(graph.nodes.has_locality_hash());
        assert_eq!(graph.nodes.len(), 3);
        // An oracle-style custom placement supersedes the partitioner.
        let oracle = Placement::Custom(std::sync::Arc::new(|_h| 1usize));
        let (graph, _) = build_graph(&team, &spectrum, oracle, part);
        assert!(!graph.nodes.has_locality_hash());
        assert_eq!(graph.nodes.shard_sizes(), vec![0, 3, 0, 0]);
    }
}
