//! Parallel de Bruijn graph traversal.
//!
//! Mutual unique-extension links give every vertex in-degree ≤ 1 and
//! out-degree ≤ 1, so the graph decomposes into simple paths and cycles.
//! The default traversal walks each path from its endpoints: every rank
//! scans its **local** shard for endpoint vertices (the paper's "processors
//! select traversal seeds from local buckets"), walks right one
//! hash-table lookup per extension, and emits the contig if its endpoint
//! pair tie-break says so — a schedule-independent way to emit each path
//! exactly once. A cleanup pass linearizes cyclic components.
//!
//! [`speculative`] implements the paper's random-seed formulation (seeds
//! claimed speculatively, duplicates resolved afterwards) for the ablation
//! benches; both produce the identical contig set.

use crate::contig_set::ContigSet;
use crate::graph::{DebruijnGraph, GraphNode};
use hipmer_dna::{canonical_seq, decode_base, ExtensionPair, Kmer, KmerCodec};
use hipmer_kanalysis::KmerSpectrum;
use hipmer_pgas::{
    PartitionScheme, Partitioner, PhaseReport, Placement, RankCtx, Schedule, SoftwareCache, Team,
};

/// Which traversal algorithm to run (ablation hook; all three emit the
/// identical contig set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraversalMode {
    /// The paper's scheme: every rank seeds subcontigs from its local
    /// buckets, claims vertices with a lightweight synchronization flag,
    /// stops at foreign claims, and the resulting subcontig chains are
    /// merged. Work per rank is proportional to its local vertices even
    /// when one contig spans the whole genome.
    Cooperative,
    /// Deterministic endpoint walks: one walker per path endpoint (simple,
    /// but serializes each contig onto one rank).
    EndpointWalk,
    /// Random local seeds with duplicate resolution by deduplication.
    Speculative,
}

/// Traversal configuration.
#[derive(Clone)]
pub struct ContigConfig {
    /// Discard contigs shorter than this many bases (default: k, the
    /// Meraculous convention of keeping everything at least one k-mer
    /// long).
    pub min_contig_len: usize,
    /// Vertex placement: cyclic (baseline) or oracle.
    pub placement: Placement,
    /// Traversal algorithm.
    pub mode: TraversalMode,
    /// Cooperative mode: cap on steps per walk before the subcontig is
    /// closed with a boundary link (keeps per-rank work bounded).
    pub walk_cap: usize,
    /// Capacity of the per-rank node cache fronting *extension-only* reads
    /// of the graph table (endpoint checks, walk steps, boundary probes).
    /// `exts` never changes after the graph is built, so those reads obey
    /// the [`SoftwareCache`] coherence contract; reads that consult the
    /// mutable `visited` flag, and all claiming writes, bypass the cache.
    /// `0` disables caching (ablation hook).
    pub node_cache: usize,
    /// How cooperative-mode seeds are dealt to ranks. [`Schedule::Static`]
    /// keeps the paper's local-bucket seeding (each rank seeds only its own
    /// shard — skewed when placement co-locates a dominant contig on one
    /// rank). [`Schedule::Dynamic`] pools all seeds and deals them as
    /// guided chunks, so any rank may walk any region; the claim flags
    /// still guarantee each vertex is consumed exactly once and the merged
    /// contig set is byte-identical. Ignored by the other traversal modes.
    pub schedule: Schedule,
    /// How graph vertices map to ranks under cyclic placement: uniform
    /// hashing or minimizer bucketing (adjacent k-mers share an owner, so
    /// claim/probe steps stay local within minimizer runs). Superseded by
    /// an oracle [`Placement::Custom`] — see [`crate::graph::build_graph`].
    pub partition: PartitionScheme,
    /// Abundance-aware hair/tip pruning floor (the MetaHipMer multi-k
    /// rounds): after traversal, contigs no longer than
    /// [`Self::prune_max_len`] with at least one dead end (no unique
    /// outward extension) and a mean k-mer depth below this floor are
    /// dropped. `0.0` (the default) disables pruning — the classic
    /// single-k pipeline never sets it, so its output is untouched.
    pub prune_depth_floor: f64,
    /// Length cap for prune candidates (default `3 * k`): anything longer
    /// is kept regardless of depth. Error hairs and tips are at most about
    /// a read length of spurious extension, so a generous cap still never
    /// touches genuine backbone contigs.
    pub prune_max_len: usize,
}

impl ContigConfig {
    /// Defaults for a given k.
    pub fn new(k: usize) -> Self {
        ContigConfig {
            min_contig_len: k,
            placement: Placement::Cyclic,
            mode: TraversalMode::Cooperative,
            walk_cap: 2048,
            node_cache: 16384,
            schedule: Schedule::Static,
            partition: PartitionScheme::Uniform,
            prune_depth_floor: 0.0,
            prune_max_len: 3 * k,
        }
    }

    /// The per-rank node cache for this configuration (`None` if disabled).
    fn make_cache(&self) -> Option<SoftwareCache<Kmer, GraphNode>> {
        (self.node_cache > 0).then(|| SoftwareCache::new(self.node_cache))
    }
}

/// A node read that only consults the immutable `exts` field (and
/// existence), served through the per-rank cache when one is configured.
///
/// Coherence: a cached [`GraphNode`] may carry a **stale `visited` flag** —
/// callers must not read it. Freshness checks and claims go through
/// `graph.nodes` directly.
fn node_for_exts(
    graph: &DebruijnGraph,
    ctx: &mut RankCtx,
    cache: &mut Option<SoftwareCache<Kmer, GraphNode>>,
    key: &Kmer,
) -> Option<GraphNode> {
    match cache.as_mut() {
        Some(c) => c.get_through(ctx, &graph.nodes, key),
        None => graph.nodes.get(ctx, key),
    }
}

/// A k-mer in walk orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Oriented {
    /// The k-mer as walked (possibly the reverse complement of canonical).
    kmer: Kmer,
    /// Its canonical table key.
    canon: Kmer,
    /// Whether `kmer != canon`.
    flipped: bool,
}

fn orient(codec: &KmerCodec, kmer: Kmer) -> Oriented {
    let canon = codec.canonical(kmer);
    Oriented {
        kmer,
        canon,
        flipped: canon != kmer,
    }
}

/// A node's extensions as seen from the given orientation.
fn exts_of(node: &GraphNode, flipped: bool) -> ExtensionPair {
    if flipped {
        node.exts.flip()
    } else {
        node.exts
    }
}

/// Try to advance one base to the right. Returns the next oriented vertex,
/// its node, and the appended base code — or `None` at a path end (missing
/// neighbor or non-mutual link). Exactly one hash-table lookup.
fn step_right(
    graph: &DebruijnGraph,
    ctx: &mut RankCtx,
    cache: &mut Option<SoftwareCache<Kmer, GraphNode>>,
    cur: Oriented,
    cur_node: &GraphNode,
) -> Option<(Oriented, GraphNode, u8)> {
    let codec = &graph.codec;
    let b = exts_of(cur_node, cur.flipped).right.unique_base()?;
    let next = orient(codec, codec.extend_right(cur.kmer, b));
    let node = node_for_exts(graph, ctx, cache, &next.canon)?;
    ctx.stats.compute(1);
    // Mutual check: the next vertex's left extension must point back at the
    // base we dropped (the current k-mer's first base).
    if exts_of(&node, next.flipped).left.unique_base() != Some(codec.first_base(cur.kmer)) {
        return None;
    }
    Some((next, node, b))
}

/// Whether the vertex has a mutual left neighbor (one lookup).
fn has_left(
    graph: &DebruijnGraph,
    ctx: &mut RankCtx,
    cache: &mut Option<SoftwareCache<Kmer, GraphNode>>,
    cur: Oriented,
    cur_node: &GraphNode,
) -> bool {
    let codec = &graph.codec;
    let Some(b) = exts_of(cur_node, cur.flipped).left.unique_base() else {
        return false;
    };
    let prev = orient(codec, codec.extend_left(cur.kmer, b));
    let Some(pnode) = node_for_exts(graph, ctx, cache, &prev.canon) else {
        return false;
    };
    ctx.stats.compute(1);
    exts_of(&pnode, prev.flipped).right.unique_base() == Some(codec.last_base(cur.kmer))
}

/// Walk right from `start`, returning the sequence and the canonical keys
/// of every vertex on the path (including `start`).
fn walk_right(
    graph: &DebruijnGraph,
    ctx: &mut RankCtx,
    cache: &mut Option<SoftwareCache<Kmer, GraphNode>>,
    start: Oriented,
    start_node: GraphNode,
) -> (Vec<u8>, Vec<Kmer>, Oriented) {
    let codec = &graph.codec;
    let mut seq = codec.unpack(start.kmer);
    let mut path = vec![start.canon];
    let mut cur = start;
    let mut cur_node = start_node;
    while let Some((next, node, b)) = step_right(graph, ctx, cache, cur, &cur_node) {
        // A walk from a true endpoint cannot revisit (in/out degree ≤ 1),
        // but a cycle walk returns to its start; callers handle that — here
        // we guard against it to keep linear walks finite in all cases.
        if next.canon == start.canon {
            break;
        }
        seq.push(decode_base(b));
        path.push(next.canon);
        cur = next;
        cur_node = node;
    }
    (seq, path, cur)
}

/// Mark every vertex of an emitted path visited (one access per vertex).
fn mark_visited(graph: &DebruijnGraph, ctx: &mut RankCtx, path: &[Kmer]) {
    for km in path {
        graph.nodes.with_mut(ctx, km, |slot| {
            if let Some(node) = slot {
                node.visited = true;
            }
        });
    }
}

/// One step of the claiming walk.
enum ClaimStep {
    /// The next vertex was free and is now ours.
    Claimed(Oriented, GraphNode, u8),
    /// The next vertex exists but belongs to another subcontig: record the
    /// boundary (its canonical key) and stop.
    Boundary(Kmer),
    /// Natural path end (missing vertex or non-mutual link).
    End,
}

/// Advance one base, claiming the next vertex in the same access that
/// reads it (one one-sided operation per explored vertex, as in the
/// paper).
///
/// With `stop_foreign` set (locality-aware placement: adjacent k-mers
/// share an owner), the walk instead **stops at ownership boundaries**:
/// crossing into another rank's minimizer run records a boundary link and
/// lets that rank claim its own run from its local buckets. Every claim is
/// then rank-local and the only remote traffic is one exts probe per run
/// boundary — this is what converts co-ownership of adjacent k-mers into
/// an off-node message reduction. The chain merge stitches the per-run
/// subcontigs exactly as it stitches walk-cap and racing-claim boundaries,
/// so the contig set is unchanged.
fn step_claim(
    graph: &DebruijnGraph,
    ctx: &mut RankCtx,
    cache: &mut Option<SoftwareCache<Kmer, GraphNode>>,
    cur: Oriented,
    cur_node: &GraphNode,
    stop_foreign: bool,
) -> ClaimStep {
    let codec = graph.codec;
    let Some(b) = exts_of(cur_node, cur.flipped).right.unique_base() else {
        return ClaimStep::End;
    };
    let next = orient(&codec, codec.extend_right(cur.kmer, b));
    let first_base = codec.first_base(cur.kmer);
    ctx.stats.compute(1);
    if stop_foreign && graph.nodes.owner(&next.canon) != ctx.rank {
        // Ownership boundary. Confirm the link is real (exts-only read,
        // cache-served) before pointing the merge at it; the owner claims
        // the vertex when it seeds its own run.
        let Some(node) = node_for_exts(graph, ctx, cache, &next.canon) else {
            return ClaimStep::End;
        };
        if exts_of(&node, next.flipped).left.unique_base() != Some(first_base) {
            return ClaimStep::End;
        }
        return ClaimStep::Boundary(next.canon);
    }
    graph.nodes.with_mut(ctx, &next.canon, |slot| match slot {
        None => ClaimStep::End,
        Some(node) => {
            if exts_of(node, next.flipped).left.unique_base() != Some(first_base) {
                return ClaimStep::End;
            }
            if node.visited {
                ClaimStep::Boundary(next.canon)
            } else {
                node.visited = true;
                ClaimStep::Claimed(next, *node, b)
            }
        }
    })
}

/// A subcontig produced by the cooperative traversal.
struct Subcontig {
    /// Sequence in the seed's canonical orientation.
    seq: Vec<u8>,
    /// Canonical key of the first k-mer.
    left_end: Kmer,
    /// Canonical key of the last k-mer.
    right_end: Kmer,
    /// Canonical key of the claimed vertex beyond the left end, if the
    /// walk stopped at a foreign claim (None at natural ends).
    left_link: Option<Kmer>,
    /// Same for the right end.
    right_link: Option<Kmer>,
}

/// Claim `seed` and walk both directions from it, claiming every vertex
/// consumed. Returns the subcontig and the number of vertices claimed, or
/// `None` if the seed was already claimed by another walk.
fn claim_walk_seed(
    graph: &DebruijnGraph,
    ctx: &mut RankCtx,
    cfg: &ContigConfig,
    cache: &mut Option<SoftwareCache<Kmer, GraphNode>>,
    seed: Kmer,
) -> Option<(Subcontig, usize)> {
    let codec = graph.codec;
    // Claim the seed (visited flips exactly once, whichever rank wins).
    let seed_node = graph.nodes.with_mut(ctx, &seed, |slot| {
        let node = slot.expect("seed key exists");
        if node.visited {
            None
        } else {
            node.visited = true;
            Some(*node)
        }
    })?;
    let mut claimed = 1usize;
    // Locality-aware placement co-locates adjacent k-mers, so walks stop
    // at ownership boundaries and each rank claims its own runs locally.
    let stop_foreign = graph.nodes.has_locality_hash();

    let start = Oriented {
        kmer: seed,
        canon: seed,
        flipped: false,
    };
    // Extend right in canonical orientation.
    let mut seq = codec.unpack(seed);
    let mut right_end = seed;
    let mut right_link = None;
    let mut cur = start;
    let mut cur_node = seed_node;
    let mut hit_cap = true;
    for _ in 0..cfg.walk_cap {
        match step_claim(graph, ctx, cache, cur, &cur_node, stop_foreign) {
            ClaimStep::Claimed(next, node, b) => {
                claimed += 1;
                seq.push(decode_base(b));
                right_end = next.canon;
                cur = next;
                cur_node = node;
            }
            ClaimStep::Boundary(km) => {
                right_link = Some(km);
                hit_cap = false;
                break;
            }
            ClaimStep::End => {
                hit_cap = false;
                break;
            }
        }
    }
    if hit_cap && exts_of(&cur_node, cur.flipped).right.is_unique() {
        // Hit the cap mid-path: the next (unclaimed) vertex is the
        // boundary another subcontig will seed from.
        let b = exts_of(&cur_node, cur.flipped).right.unique_base().unwrap();
        let next = orient(&codec, codec.extend_right(cur.kmer, b));
        if node_for_exts(graph, ctx, cache, &next.canon).is_some() {
            right_link = Some(next.canon);
        }
    }

    // Extend left: walk right in the flipped orientation and prepend
    // complements.
    let mut left_end = seed;
    let mut left_link = None;
    let mut cur = Oriented {
        kmer: codec.revcomp(seed),
        canon: seed,
        flipped: true,
    };
    let mut cur_node = seed_node;
    let mut prepended: Vec<u8> = Vec::new();
    let mut hit_cap = true;
    for _ in 0..cfg.walk_cap {
        match step_claim(graph, ctx, cache, cur, &cur_node, stop_foreign) {
            ClaimStep::Claimed(next, node, b) => {
                claimed += 1;
                // Base b extends the flipped orientation; in forward
                // orientation it prepends complement(b).
                prepended.push(decode_base(3 - b));
                left_end = next.canon;
                cur = next;
                cur_node = node;
            }
            ClaimStep::Boundary(km) => {
                left_link = Some(km);
                hit_cap = false;
                break;
            }
            ClaimStep::End => {
                hit_cap = false;
                break;
            }
        }
    }
    if hit_cap && exts_of(&cur_node, cur.flipped).right.is_unique() {
        let b = exts_of(&cur_node, cur.flipped).right.unique_base().unwrap();
        let next = orient(&codec, codec.extend_right(cur.kmer, b));
        if node_for_exts(graph, ctx, cache, &next.canon).is_some() {
            left_link = Some(next.canon);
        }
    }
    if !prepended.is_empty() {
        prepended.reverse();
        prepended.extend_from_slice(&seq);
        seq = prepended;
    }
    Some((
        Subcontig {
            seq,
            left_end,
            right_end,
            left_link,
            right_link,
        },
        claimed,
    ))
}

/// The paper's cooperative traversal: claim-as-you-walk subcontigs from
/// local seeds, then merge the chains.
fn traverse_cooperative(
    team: &Team,
    graph: &DebruijnGraph,
    cfg: &ContigConfig,
) -> (Vec<Vec<u8>>, Vec<hipmer_pgas::CommStats>, f64) {
    let codec = graph.codec;
    // Three passes over the local seeds. In a truly concurrent execution
    // the racing walks partition the graph into ~G/p claims per rank; our
    // virtual ranks run sequentially, so (a) the early passes cap each
    // rank's total claims at ~1.5x its local share, and (b) the first
    // pass only seeds *native* vertices — ones with a graph neighbor on
    // the same rank. Under oracle placement a collision-displaced k-mer
    // is non-native (its contig lives elsewhere); deferring it lets the
    // contig's owner claim its region locally first, exactly as the race
    // resolves on a real machine. A final uncapped pass mops up leftovers.
    let run_pass = |pass: u8| {
        let capped = pass < 2;
        let native_only = pass == 0;
        let label = match pass {
            0 => "contig/traversal/pass-native",
            1 => "contig/traversal/pass-capped",
            _ => "contig/traversal/pass-final",
        };
        team.run_named(label, |ctx| {
            // Per-rank node cache: in cooperative mode only the cap-boundary
            // existence probes are exts-only reads (claims must see fresh
            // `visited` and always bypass it).
            let mut cache = cfg.make_cache();
            // Seed scan: a snapshot of the local shard. Already-claimed
            // vertices are skipped from the (possibly stale) snapshot without
            // a table lookup — claims never revert, so a stale "claimed" is
            // always correct to skip.
            let local = graph.nodes.snapshot_local(ctx);
            let rank_cap = if capped {
                (local.len() * 3 / 2).max(64)
            } else {
                usize::MAX
            };
            let mut claimed_total = 0usize;
            let mut subs: Vec<Subcontig> = Vec::new();

            for (seed, snapshot_node) in local {
                if claimed_total >= rank_cap {
                    break;
                }
                if snapshot_node.visited {
                    continue;
                }
                if native_only {
                    // Neighbor ownership is pure placement arithmetic — no
                    // table lookups.
                    let mut native = false;
                    ctx.stats.compute(2);
                    if let Some(b) = snapshot_node.exts.left.unique_base() {
                        let n = codec.canonical(codec.extend_left(seed, b));
                        native |= graph.nodes.owner(&n) == ctx.rank;
                    }
                    if !native {
                        if let Some(b) = snapshot_node.exts.right.unique_base() {
                            let n = codec.canonical(codec.extend_right(seed, b));
                            native |= graph.nodes.owner(&n) == ctx.rank;
                        }
                    }
                    if !native {
                        continue;
                    }
                }
                // Claim the seed (processors pick seeds from local buckets)
                // and walk both directions from it.
                let Some((sub, claims)) = claim_walk_seed(graph, ctx, cfg, &mut cache, seed) else {
                    continue;
                };
                claimed_total += claims;
                subs.push(sub);
            }
            subs
        })
    };
    let (subs, stats) = match cfg.schedule {
        Schedule::Static => {
            let (subs_native, mut stats) = run_pass(0);
            let (subs_capped, stats_capped) = run_pass(1);
            let (subs_cleanup, stats_cleanup) = run_pass(2);
            for (a, b) in stats.iter_mut().zip(&stats_capped) {
                a.merge(b);
            }
            for (a, b) in stats.iter_mut().zip(&stats_cleanup) {
                a.merge(b);
            }
            let subs: Vec<Subcontig> = subs_native
                .into_iter()
                .chain(subs_capped)
                .chain(subs_cleanup)
                .flatten()
                .collect();
            (subs, stats)
        }
        Schedule::Dynamic => {
            // Pool every seed globally: each rank reports its local keys
            // sorted, and the rank-ordered concatenation is a deterministic
            // pool independent of the OS schedule. (Materializing the pool
            // is not billed as communication; the coordination cost of
            // dealing it out is modeled by `t_steal` per claimed chunk.)
            let (seed_lists, mut stats) = team.run_named("contig/traversal/seed-scan", |ctx| {
                let mut seeds: Vec<Kmer> = graph
                    .nodes
                    .snapshot_local(ctx)
                    .into_iter()
                    .map(|(km, _)| km)
                    .collect();
                seeds.sort_unstable();
                ctx.stats.compute(seeds.len() as u64);
                seeds
            });
            let seeds: Vec<Kmer> = seed_lists.into_iter().flatten().collect();
            // Deal the pool as guided chunks: any rank may walk any region.
            // The claim flags still guarantee each vertex is consumed
            // exactly once, so the subcontig partition covers the same
            // paths and the merge below stitches identical contigs.
            let (subs_lists, stats_claim) = team.run_named("contig/traversal/claim", |ctx| {
                let mut cache = cfg.make_cache();
                let mut subs: Vec<Subcontig> = Vec::new();
                for range in ctx.dynamic_ranges(seeds.len()) {
                    for &seed in &seeds[range] {
                        if let Some((sub, _)) = claim_walk_seed(graph, ctx, cfg, &mut cache, seed) {
                            subs.push(sub);
                        }
                    }
                }
                subs
            });
            for (a, b) in stats.iter_mut().zip(&stats_claim) {
                a.merge(b);
            }
            (subs_lists.into_iter().flatten().collect(), stats)
        }
    };

    // Serial merge of the subcontig chains (tiny: O(G / walk_cap + p)
    // pieces).
    let serial_start = std::time::Instant::now();
    let k = codec.k();
    // Map endpoint key -> (subcontig index, side). side 0 = left end.
    let mut by_end: std::collections::HashMap<Kmer, Vec<(usize, u8)>> =
        std::collections::HashMap::new();
    for (i, s) in subs.iter().enumerate() {
        by_end.entry(s.left_end).or_default().push((i, 0));
        if s.right_end != s.left_end {
            by_end.entry(s.right_end).or_default().push((i, 1));
        }
    }
    // Follow a link: which subcontig owns the endpoint `km`, other than
    // `not` (a subcontig may self-link on cycles)?
    let owner_of = |km: Kmer, not: usize| -> Option<(usize, u8)> {
        by_end
            .get(&km)
            .and_then(|v| v.iter().find(|(i, _)| *i != not).or_else(|| v.first()))
            .copied()
    };

    let mut used = vec![false; subs.len()];
    let mut out: Vec<Vec<u8>> = Vec::new();
    for start in 0..subs.len() {
        if used[start] {
            continue;
        }
        // Walk to the chain's left terminus.
        let mut cur = (start, 0u8); // (subcontig, the side we face left)
        let mut hops = 0usize;
        loop {
            let link = if cur.1 == 0 {
                subs[cur.0].left_link
            } else {
                subs[cur.0].right_link
            };
            let Some(km) = link else { break };
            let Some((pi, pside)) = owner_of(km, cur.0) else {
                break;
            };
            if pi == start && hops > 0 {
                break; // cycle
            }
            if pi == cur.0 {
                break; // self-link (single-subcontig cycle)
            }
            // We enter the previous subcontig at the side whose link
            // points back at our endpoint. (Endpoint matching alone is
            // ambiguous for single-k-mer subcontigs where left_end ==
            // right_end.)
            let my_end = if cur.1 == 0 {
                subs[cur.0].left_end
            } else {
                subs[cur.0].right_end
            };
            let enter_side = if subs[pi].left_link == Some(my_end) {
                0u8
            } else if subs[pi].right_link == Some(my_end) {
                1u8
            } else if subs[pi].left_end == km {
                0u8
            } else {
                1u8
            };
            let _ = pside;
            cur = (pi, 1 - enter_side);
            hops += 1;
            if hops > subs.len() {
                break;
            }
        }
        // Assemble rightward from the terminus.
        let first = cur.0;
        let mut seq = if cur.1 == 0 {
            subs[first].seq.clone()
        } else {
            hipmer_dna::revcomp(&subs[first].seq)
        };
        used[first] = true;
        let mut cursor = (first, 1 - cur.1); // side we exit from
        let mut hops = 0usize;
        loop {
            let link = if cursor.1 == 0 {
                subs[cursor.0].left_link
            } else {
                subs[cursor.0].right_link
            };
            let Some(km) = link else { break };
            let Some((ni, _)) = owner_of(km, cursor.0) else {
                break;
            };
            if used[ni] {
                break;
            }
            // Orient the next subcontig so the side whose link points
            // back at our endpoint becomes its left. (For single-k-mer
            // subcontigs, left_end == right_end, so links disambiguate.)
            let my_end = if cursor.1 == 0 {
                subs[cursor.0].left_end
            } else {
                subs[cursor.0].right_end
            };
            let enter_side = if subs[ni].left_link == Some(my_end) {
                0u8
            } else if subs[ni].right_link == Some(my_end) {
                1u8
            } else if subs[ni].left_end == km {
                0u8
            } else {
                1u8
            };
            let next_seq = if enter_side == 0 {
                subs[ni].seq.clone()
            } else {
                hipmer_dna::revcomp(&subs[ni].seq)
            };
            // Adjacent subcontigs overlap by exactly k-1 bases.
            if next_seq.len() >= k - 1
                && seq.len() >= k - 1
                && next_seq[..k - 1] == seq[seq.len() - (k - 1)..]
            {
                seq.extend_from_slice(&next_seq[k - 1..]);
            } else {
                break; // inconsistent join; leave as separate chains
            }
            used[ni] = true;
            cursor = (ni, 1 - enter_side);
            hops += 1;
            if hops > subs.len() {
                break;
            }
        }
        if seq.len() >= cfg.min_contig_len {
            out.push(canonical_seq(seq));
        }
    }
    let serial_seconds = serial_start.elapsed().as_secs_f64();
    (out, stats, serial_seconds)
}

/// The deterministic endpoint traversal (default mode).
fn traverse_endpoints(
    team: &Team,
    graph: &DebruijnGraph,
    cfg: &ContigConfig,
) -> (Vec<Vec<u8>>, Vec<hipmer_pgas::CommStats>) {
    // Pass 1: endpoint walks. Every endpoint check and walk step is an
    // exts-only read, so the whole pass runs through the node cache: path
    // vertices are read several times (once per orientation check of their
    // own endpoint role, once per walk over the path) and repeats hit.
    let (seqs, stats) = team.run_named("contig/traversal/endpoints", |ctx| {
        let mut cache = cfg.make_cache();
        let local = graph.nodes.snapshot_local(ctx);
        let mut out: Vec<Vec<u8>> = Vec::new();
        for (km, node) in local {
            // Two possible walk orientations; each is a start if it has no
            // mutual left neighbor.
            for flipped in [false, true] {
                let oriented = if flipped {
                    Oriented {
                        kmer: graph.codec.revcomp(km),
                        canon: km,
                        flipped: true,
                    }
                } else {
                    Oriented {
                        kmer: km,
                        canon: km,
                        flipped: false,
                    }
                };
                if has_left(graph, ctx, &mut cache, oriented, &node) {
                    continue;
                }
                let (seq, path, end) = walk_right(graph, ctx, &mut cache, oriented, node);
                // Tie-break: of the two endpoint walks over this path, emit
                // the one whose start key is smaller; single-vertex paths
                // (start == end) emit from the canonical orientation only.
                let emit = match oriented.canon.bits().cmp(&end.canon.bits()) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => !oriented.flipped,
                    std::cmp::Ordering::Greater => false,
                };
                if emit {
                    mark_visited(graph, ctx, &path);
                    if seq.len() >= cfg.min_contig_len {
                        out.push(canonical_seq(seq));
                    }
                }
            }
        }
        out
    });
    let mut all: Vec<Vec<u8>> = seqs.into_iter().flatten().collect();

    // Pass 2: cycle cleanup. Any vertex still unvisited lies on a cycle;
    // walk it, and the walker whose start is the cycle's minimum key emits.
    let (cycle_seqs, cycle_stats) = team.run_named("contig/traversal/cycles", |ctx| {
        let mut cache = cfg.make_cache();
        let local: Vec<(Kmer, GraphNode)> = graph
            .nodes
            .snapshot_local(ctx)
            .into_iter()
            .filter(|(_, node)| !node.visited)
            .collect();
        let mut out: Vec<Vec<u8>> = Vec::new();
        for (km, node) in local {
            // Re-check visited (an earlier walk this pass may have claimed
            // the cycle). Reads `visited`, so it must bypass the cache.
            let still = graph
                .nodes
                .get(ctx, &km)
                .map(|n| !n.visited)
                .unwrap_or(false);
            if !still {
                continue;
            }
            let start = Oriented {
                kmer: km,
                canon: km,
                flipped: false,
            };
            let (seq, path, _) = walk_right(graph, ctx, &mut cache, start, node);
            let min = path.iter().min().copied().expect("non-empty path");
            if min == km {
                mark_visited(graph, ctx, &path);
                if seq.len() >= cfg.min_contig_len {
                    out.push(canonical_seq(seq));
                }
            }
        }
        out
    });
    all.extend(cycle_seqs.into_iter().flatten());

    let mut merged = stats;
    for (a, b) in merged.iter_mut().zip(&cycle_stats) {
        a.merge(b);
    }
    (all, merged)
}

/// The paper-style speculative traversal: every rank seeds from its local
/// shard in arbitrary order, walks left to the path start, then emits the
/// full path. Ranks racing on one connected component produce duplicate
/// candidates; deduplication of the canonical sequences resolves them
/// (playing the role of the paper's lightweight synchronization scheme).
pub fn speculative(
    team: &Team,
    graph: &DebruijnGraph,
    cfg: &ContigConfig,
) -> (Vec<Vec<u8>>, Vec<hipmer_pgas::CommStats>) {
    let (seqs, stats) = team.run_named("contig/traversal/speculative", |ctx| {
        let mut cache = cfg.make_cache();
        let local = graph.nodes.snapshot_local(ctx);
        let mut out: Vec<Vec<u8>> = Vec::new();
        for (km, node) in local {
            // Skip seeds already swallowed by a completed walk. Reads
            // `visited`, so it must bypass the cache.
            let fresh = graph
                .nodes
                .get(ctx, &km)
                .map(|n| !n.visited)
                .unwrap_or(false);
            if !fresh {
                continue;
            }
            // Walk left (= walk right in flipped orientation) to the start.
            let flipped_seed = Oriented {
                kmer: graph.codec.revcomp(km),
                canon: km,
                flipped: true,
            };
            let (_, lpath, left_end) = walk_right(graph, ctx, &mut cache, flipped_seed, node);
            let _ = lpath;
            // left_end is the path's left endpoint in flipped orientation;
            // re-flip to walk the path forward (exts-only read).
            let start = orient(&graph.codec, graph.codec.revcomp(left_end.kmer));
            let start_node = match node_for_exts(graph, ctx, &mut cache, &start.canon) {
                Some(n) => n,
                None => continue,
            };
            let (seq, path, _) = walk_right(graph, ctx, &mut cache, start, start_node);
            mark_visited(graph, ctx, &path);
            if seq.len() >= cfg.min_contig_len {
                out.push(canonical_seq(seq));
            }
        }
        out
    });
    let mut all: Vec<Vec<u8>> = seqs.into_iter().flatten().collect();
    all.sort();
    all.dedup();
    (all, stats)
}

/// Traverse a built graph into a contig set.
pub fn traverse_graph(
    team: &Team,
    graph: &DebruijnGraph,
    cfg: &ContigConfig,
) -> (ContigSet, PhaseReport) {
    assert!(
        graph.codec.k() % 2 == 1,
        "traversal requires odd k (no palindromic k-mers)"
    );
    let (seqs, mut stats, serial_seconds) = match cfg.mode {
        TraversalMode::Cooperative => traverse_cooperative(team, graph, cfg),
        TraversalMode::EndpointWalk => {
            let (s, st) = traverse_endpoints(team, graph, cfg);
            (s, st, 0.0)
        }
        TraversalMode::Speculative => {
            let (s, st) = speculative(team, graph, cfg);
            (s, st, 0.0)
        }
    };
    graph.nodes.drain_service_into(&mut stats);
    let set = ContigSet::from_sequences(graph.codec, seqs);
    (
        set,
        PhaseReport::new("contig/traversal", *team.topo(), stats).with_serial(serial_seconds),
    )
}

/// Whether one contig end is a dead end: walking outward from the terminal
/// k-mer (oriented in contig direction) through *shallow* vertices — the
/// contig's own terminal plus the non-UU stragglers the traversal excluded
/// from emission — terminates (missing k-mer, no unique extension) before
/// reaching any k-mer at or above `floor` depth. Reaching a deep vertex
/// means the end rejoins covered sequence (a fork into the backbone, or a
/// bubble arm), which pruning must leave alone.
fn end_is_dead(
    ctx: &mut RankCtx,
    spectrum: &KmerSpectrum,
    end_kmer: Kmer,
    outward_left: bool,
    floor: f64,
    max_hops: usize,
) -> bool {
    let codec = &spectrum.codec;
    let mut cur = end_kmer;
    for hop in 0..=max_hops {
        let canon = codec.canonical(cur);
        let Some(entry) = spectrum.table.get(ctx, &canon) else {
            return true;
        };
        // The first vertex is the contig's own terminal (shallow by the
        // caller's depth test); any later deep vertex is a reconnection.
        if hop > 0 && entry.count as f64 >= floor {
            return false;
        }
        let exts = if canon == cur {
            entry.exts
        } else {
            entry.exts.flip()
        };
        let outward = if outward_left { exts.left } else { exts.right };
        let Some(code) = outward.unique_base() else {
            return true;
        };
        cur = if outward_left {
            codec.extend_left(cur, code)
        } else {
            codec.extend_right(cur, code)
        };
    }
    // Walked max_hops shallow-but-extending vertices without dying: treat
    // as alive rather than guess (pruning must never eat real sequence).
    false
}

/// Abundance-aware hair/tip pruning (the MetaHipMer multi-k design):
/// drop short contigs that dead-end on at least one side and whose mean
/// k-mer depth is below [`ContigConfig::prune_depth_floor`]. Sequencing
/// errors in low-abundance species survive the count filter just often
/// enough to sprout short dead-end branches; feeding those forward as
/// pseudo-reads would amplify them round over round, so the non-final
/// rounds prune them here. The decision is a pure per-contig function of
/// the frozen k-mer table, so the surviving set is schedule- and
/// topology-independent.
pub fn prune_hairs(
    team: &Team,
    spectrum: &KmerSpectrum,
    set: &ContigSet,
    cfg: &ContigConfig,
) -> (ContigSet, PhaseReport) {
    let codec = spectrum.codec;
    let k = codec.k();
    let candidates: Vec<usize> = (0..set.contigs.len())
        .filter(|&ci| set.contigs[ci].seq.len() <= cfg.prune_max_len)
        .collect();
    let weights: Vec<u64> = candidates
        .iter()
        .map(|&ci| (set.contigs[ci].seq.len() - k + 1) as u64)
        .collect();

    let (drop_lists, mut stats) = team.run_named("contig/prune", |ctx| {
        let mut dropped: Vec<usize> = Vec::new();
        let mine: Vec<usize> = cfg
            .schedule
            .ranges_weighted(ctx, &weights)
            .into_iter()
            .flatten()
            .collect();
        for &i in &mine {
            let ci = candidates[i];
            let seq = &set.contigs[ci].seq;
            let n_kmers = seq.len() - k + 1;
            ctx.stats.compute(n_kmers as u64);
            let kmers: Vec<Kmer> = (0..n_kmers)
                .filter_map(|off| codec.pack(&seq[off..off + k]))
                .collect();
            let mut sum = 0u64;
            let mut n = 0u64;
            for entry in spectrum.get_batch(ctx, &kmers).into_iter().flatten() {
                sum += entry.count as u64;
                n += 1;
            }
            let depth = if n == 0 { 0.0 } else { sum as f64 / n as f64 };
            if depth >= cfg.prune_depth_floor {
                continue;
            }
            let first = codec
                .pack(&seq[..k])
                .expect("contig starts with k clean bases");
            let last = codec
                .pack(&seq[seq.len() - k..])
                .expect("contig ends with k clean bases");
            let floor = cfg.prune_depth_floor;
            let hops = cfg.prune_max_len;
            if end_is_dead(ctx, spectrum, first, true, floor, hops)
                || end_is_dead(ctx, spectrum, last, false, floor, hops)
            {
                dropped.push(ci);
            }
        }
        dropped
    });
    spectrum.table.drain_service_into(&mut stats);

    let mut drop = vec![false; set.contigs.len()];
    for ci in drop_lists.into_iter().flatten() {
        drop[ci] = true;
    }
    let survivors: Vec<Vec<u8>> = set
        .contigs
        .iter()
        .filter(|c| !drop[c.id])
        .map(|c| c.seq.clone())
        .collect();
    (
        ContigSet::from_sequences(codec, survivors),
        PhaseReport::new("contig/prune", *team.topo(), stats),
    )
}

/// Convenience: build the graph from a spectrum and traverse it. With
/// [`ContigConfig::prune_depth_floor`] set, low-depth hairs/tips are
/// pruned from the traversal output (the multi-k rounds path).
pub fn generate_contigs(
    team: &Team,
    spectrum: &KmerSpectrum,
    cfg: &ContigConfig,
) -> (ContigSet, Vec<PhaseReport>) {
    let part = Partitioner::new(cfg.partition, spectrum.codec.k());
    let (graph, build_report) =
        crate::graph::build_graph(team, spectrum, cfg.placement.clone(), part);
    let (set, traverse_report) = traverse_graph(team, &graph, cfg);
    // The traversal walks the same table the build placed, so it carries
    // the build's placement label in the report's per-placement split.
    let label = build_report.placement.clone().unwrap_or_default();
    let mut reports = vec![build_report, traverse_report.with_placement(label.clone())];
    let set = if cfg.prune_depth_floor > 0.0 {
        let (pruned, prune_report) = prune_hairs(team, spectrum, &set, cfg);
        reports.push(prune_report.with_placement(label));
        pruned
    } else {
        set
    };
    (set, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
    use hipmer_pgas::Topology;
    use hipmer_seqio::SeqRecord;

    fn lcg_genome(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    fn perfect_reads(genome: &[u8], read_len: usize, depth: usize) -> Vec<SeqRecord> {
        let mut out = Vec::new();
        for d in 0..depth {
            let mut pos = d * 7 % read_len.max(1);
            while pos + read_len <= genome.len() {
                out.push(SeqRecord::with_uniform_quality(
                    format!("r{d}_{pos}"),
                    genome[pos..pos + read_len].to_vec(),
                    35,
                ));
                pos += read_len / 2;
            }
        }
        out
    }

    fn assemble(genome: &[u8], topo: Topology, mode: TraversalMode) -> ContigSet {
        let team = Team::new(topo);
        let reads = perfect_reads(genome, 80, 4);
        let kcfg = KmerAnalysisConfig::new(21);
        let (spectrum, _) = analyze_kmers(&team, &reads, &kcfg);
        let mut ccfg = ContigConfig::new(21);
        ccfg.mode = mode;
        ccfg.walk_cap = 100; // small cap: exercise chain merging in tests
        let (set, _) = generate_contigs(&team, &spectrum, &ccfg);
        set
    }

    #[test]
    fn single_clean_genome_yields_one_dominant_contig() {
        let genome = lcg_genome(3000, 21);
        let set = assemble(&genome, Topology::new(4, 2), TraversalMode::Cooperative);
        assert!(!set.is_empty());
        // Read ends lose extension votes near boundaries, so the assembly
        // may be split, but the largest contig should span nearly
        // everything.
        assert!(
            set.max_len() > genome.len() - 200,
            "max contig {} of {}",
            set.max_len(),
            genome.len()
        );
        // And it must be a substring of the genome (or its revcomp).
        let big = &set.contigs[0].seq;
        let rc = hipmer_dna::revcomp(&genome);
        let found = genome.windows(big.len()).any(|w| w == &big[..])
            || rc.windows(big.len()).any(|w| w == &big[..]);
        assert!(found, "contig is not a genome substring");
    }

    #[test]
    fn prune_drops_low_depth_hairs_and_keeps_backbone() {
        let genome = lcg_genome(1500, 9);
        let team = Team::new(Topology::new(4, 2));
        let mut reads = perfect_reads(&genome, 80, 6);
        // An erroneous read seen exactly twice: its k-mers clear the
        // min_count=2 filter, sprouting a depth-2 branch off the backbone.
        // The error sits near the read END so the branch dead-ends (a
        // hair) instead of reconnecting on both sides (a bubble, which
        // pruning deliberately leaves for the scaffolder's bubble pass).
        let mut bad = genome[200..280].to_vec();
        bad[70] = match bad[70] {
            b'A' => b'C',
            _ => b'A',
        };
        for i in 0..2 {
            reads.push(SeqRecord::with_uniform_quality(
                format!("bad{i}"),
                bad.clone(),
                35,
            ));
        }
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(21));
        let mut ccfg = ContigConfig::new(21);
        let (unpruned, _) = generate_contigs(&team, &spectrum, &ccfg);

        ccfg.prune_depth_floor = 2.5;
        let (pruned, reports) = generate_contigs(&team, &spectrum, &ccfg);
        assert!(
            reports.iter().any(|r| r.name == "contig/prune"),
            "prune phase must be reported when armed"
        );
        assert!(
            pruned.len() < unpruned.len(),
            "low-depth error branch must be pruned ({} vs {})",
            pruned.len(),
            unpruned.len()
        );
        // The deep backbone survives untouched.
        assert_eq!(pruned.max_len(), unpruned.max_len());
        // The error branch (containing the mutated base's k-mers) is gone.
        // (The emitted arm stops one k-mer short of the read end — the
        // terminal k-mer's outward extension is dead, so it is non-UU and
        // excluded — hence the window ends at 79, not 80.)
        let arm = bad[55..79].to_vec();
        let arm_rc = hipmer_dna::revcomp(&arm);
        let has_arm = |set: &ContigSet| {
            set.contigs.iter().any(|c| {
                c.seq
                    .windows(arm.len())
                    .any(|w| w == &arm[..] || w == &arm_rc[..])
            })
        };
        assert!(has_arm(&unpruned), "error arm must exist before pruning");
        assert!(!has_arm(&pruned), "error arm must be pruned");
        // Pruning is topology-independent: a different team shape drops
        // the same contigs.
        let team2 = Team::new(Topology::new(7, 3));
        let (spectrum2, _) = analyze_kmers(&team2, &reads, &KmerAnalysisConfig::new(21));
        let (pruned2, _) = generate_contigs(&team2, &spectrum2, &ccfg);
        let seqs =
            |s: &ContigSet| -> Vec<Vec<u8>> { s.contigs.iter().map(|c| c.seq.clone()).collect() };
        assert_eq!(seqs(&pruned), seqs(&pruned2));
    }

    #[test]
    fn contig_set_is_schedule_independent() {
        let genome = lcg_genome(2000, 33);
        let a = assemble(&genome, Topology::new(1, 1), TraversalMode::Cooperative);
        let b = assemble(&genome, Topology::new(7, 3), TraversalMode::Cooperative);
        let c = assemble(&genome, Topology::new(16, 4), TraversalMode::Cooperative);
        let seqs =
            |s: &ContigSet| -> Vec<Vec<u8>> { s.contigs.iter().map(|c| c.seq.clone()).collect() };
        assert_eq!(seqs(&a), seqs(&b));
        assert_eq!(seqs(&a), seqs(&c));
    }

    fn assemble_sched(
        genome: &[u8],
        topo: Topology,
        schedule: Schedule,
        partition: PartitionScheme,
        read_len: usize,
    ) -> ContigSet {
        let team = Team::new(topo);
        let reads = perfect_reads(genome, read_len, 4);
        let mut kcfg = KmerAnalysisConfig::new(21);
        kcfg.partition = partition;
        let (spectrum, _) = analyze_kmers(&team, &reads, &kcfg);
        let mut ccfg = ContigConfig::new(21);
        ccfg.walk_cap = 100;
        ccfg.schedule = schedule;
        ccfg.partition = partition;
        let (set, _) = generate_contigs(&team, &spectrum, &ccfg);
        set
    }

    #[test]
    fn dynamic_schedule_matches_static_contigs() {
        let seqs =
            |s: &ContigSet| -> Vec<Vec<u8>> { s.contigs.iter().map(|c| c.seq.clone()).collect() };
        // Random genomes at several sizes; the 60-base one has ~40 seeds,
        // fewer than the 64-rank topology (ranks > items).
        for (len, seed, read_len) in [(2000usize, 33u64, 80usize), (700, 91, 80), (60, 5, 30)] {
            let genome = lcg_genome(len, seed);
            for (ranks, per) in [(1usize, 1usize), (7, 3), (16, 4), (64, 8)] {
                let topo = Topology::new(ranks, per);
                let st = assemble_sched(
                    &genome,
                    topo,
                    Schedule::Static,
                    PartitionScheme::Uniform,
                    read_len,
                );
                let dy = assemble_sched(
                    &genome,
                    topo,
                    Schedule::Dynamic,
                    PartitionScheme::Uniform,
                    read_len,
                );
                assert_eq!(
                    seqs(&st),
                    seqs(&dy),
                    "schedules disagree at ranks={ranks} len={len}"
                );
            }
        }
    }

    #[test]
    fn minimizer_partition_matches_uniform_contigs() {
        // Placement must be invisible to assembly output: uniform and
        // minimizer bucketing produce byte-identical contig sets across
        // genomes × topologies × schedules (the static≡dynamic harness,
        // extended along the partition axis).
        let seqs =
            |s: &ContigSet| -> Vec<Vec<u8>> { s.contigs.iter().map(|c| c.seq.clone()).collect() };
        for (len, seed, read_len) in [(2000usize, 33u64, 80usize), (700, 91, 80), (60, 5, 30)] {
            let genome = lcg_genome(len, seed);
            for (ranks, per) in [(1usize, 1usize), (7, 3), (16, 4), (64, 8)] {
                let topo = Topology::new(ranks, per);
                for schedule in [Schedule::Static, Schedule::Dynamic] {
                    let uni =
                        assemble_sched(&genome, topo, schedule, PartitionScheme::Uniform, read_len);
                    let min = assemble_sched(
                        &genome,
                        topo,
                        schedule,
                        PartitionScheme::Minimizer,
                        read_len,
                    );
                    assert_eq!(
                        seqs(&uni),
                        seqs(&min),
                        "partitions disagree at ranks={ranks} len={len} {schedule:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn minimizer_partition_preserves_contigs_and_cuts_offnode_traffic() {
        // The minimizer analogue of the oracle test below: same contigs,
        // and the traversal's per-step claim/probe traffic stays local
        // within minimizer runs, cutting the stage's off-node fraction.
        let genome = lcg_genome(4000, 101);
        let topo = Topology::new(8, 2); // 4 nodes -> plenty of off-node
        let team = Team::new(topo);
        let reads = perfect_reads(&genome, 80, 4);
        let kcfg = KmerAnalysisConfig::new(21);
        let (spectrum, _) = analyze_kmers(&team, &reads, &kcfg);

        let offnode = |reports: &[PhaseReport]| -> f64 {
            reports
                .iter()
                .find(|r| r.name.contains("traversal"))
                .unwrap()
                .offnode_fraction()
        };
        let mut ucfg = ContigConfig::new(21);
        ucfg.partition = PartitionScheme::Uniform;
        let (uni_set, uni_reports) = generate_contigs(&team, &spectrum, &ucfg);
        let mut mcfg = ContigConfig::new(21);
        mcfg.partition = PartitionScheme::Minimizer;
        let (min_set, min_reports) = generate_contigs(&team, &spectrum, &mcfg);

        let seqs =
            |s: &ContigSet| -> Vec<Vec<u8>> { s.contigs.iter().map(|c| c.seq.clone()).collect() };
        assert_eq!(seqs(&uni_set), seqs(&min_set), "same contigs");

        let uni_frac = offnode(&uni_reports);
        let min_frac = offnode(&min_reports);
        assert!(
            min_frac < uni_frac * 0.75,
            "minimizer bucketing must cut off-node traversal traffic ≥ 25%: \
             {min_frac:.3} vs {uni_frac:.3}"
        );
    }

    #[test]
    fn speculative_matches_deterministic() {
        let genome = lcg_genome(2500, 55);
        let det = assemble(&genome, Topology::new(4, 2), TraversalMode::EndpointWalk);
        let spec = assemble(&genome, Topology::new(4, 2), TraversalMode::Speculative);
        let coop = assemble(&genome, Topology::new(4, 2), TraversalMode::Cooperative);
        let seqs =
            |s: &ContigSet| -> Vec<Vec<u8>> { s.contigs.iter().map(|c| c.seq.clone()).collect() };
        assert_eq!(seqs(&det), seqs(&spec));
        assert_eq!(seqs(&det), seqs(&coop));
    }

    #[test]
    fn repeat_breaks_contigs() {
        // genome: U1 R U2 R U3 — the repeat R (longer than k) must fork the
        // graph and split contigs.
        let r = lcg_genome(60, 77);
        let mut genome = lcg_genome(800, 1);
        genome.extend_from_slice(&r);
        genome.extend(lcg_genome(800, 2));
        genome.extend_from_slice(&r);
        genome.extend(lcg_genome(800, 3));
        let set = assemble(&genome, Topology::new(2, 2), TraversalMode::Cooperative);
        assert!(
            set.len() >= 3,
            "repeat must split the assembly, got {} contigs",
            set.len()
        );
        // No contig may span across the repeat boundary of two unique
        // regions: every contig still aligns to the genome.
        let rc = hipmer_dna::revcomp(&genome);
        for c in &set.contigs {
            let hit = genome.windows(c.len()).any(|w| w == &c.seq[..])
                || rc.windows(c.len()).any(|w| w == &c.seq[..]);
            assert!(hit, "chimeric contig of length {}", c.len());
        }
    }

    #[test]
    fn circular_genome_is_recovered_by_cycle_pass() {
        // Build a perfectly circular coverage pattern: reads wrap around.
        let mut genome = lcg_genome(600, 9);
        let wrap = genome.clone();
        genome.extend_from_slice(&wrap[..80]); // linearized circle overlap
        let team = Team::new(Topology::new(2, 2));
        let reads = perfect_reads(&genome, 80, 4);
        let kcfg = KmerAnalysisConfig::new(21);
        let (spectrum, _) = analyze_kmers(&team, &reads, &kcfg);
        let mut sets = Vec::new();
        for partition in [PartitionScheme::Uniform, PartitionScheme::Minimizer] {
            let mut ccfg = ContigConfig::new(21);
            ccfg.partition = partition;
            let (set, _) = generate_contigs(&team, &spectrum, &ccfg);
            // The wrapped genome has no endpoints at the junction, so
            // without the cycle pass part of it would vanish. Total
            // assembled bases must be close to the circle length.
            assert!(
                set.total_bases() + 150 > 600,
                "cycle pass lost sequence: {} bases",
                set.total_bases()
            );
            sets.push(set);
        }
        // Cyclic components must also survive partition-boundary
        // stitching. A cycle's linearization rotation depends on claim
        // order (true under uniform placement too), so compare rotation-
        // and strand-invariantly: same lengths, and each contig is a
        // window of the other scheme's doubled sequence.
        assert_eq!(sets[0].len(), sets[1].len());
        for (a, b) in sets[0].contigs.iter().zip(&sets[1].contigs) {
            assert_eq!(a.len(), b.len());
            // A linearized cycle is one period plus k-1 wrap bases; strip
            // the wrap and compare the periods as rotations.
            let core_a = &a.seq[..a.len() - 20];
            let core_b = &b.seq[..b.len() - 20];
            let mut doubled = core_a.to_vec();
            doubled.extend_from_slice(core_a);
            let rc = hipmer_dna::revcomp(&doubled);
            assert!(
                doubled.windows(core_b.len()).any(|w| w == core_b)
                    || rc.windows(core_b.len()).any(|w| w == core_b),
                "cycle contents differ between partition schemes"
            );
        }
    }

    #[test]
    fn oracle_placement_preserves_contigs_and_cuts_offnode_traffic() {
        let genome = lcg_genome(4000, 101);
        let topo = Topology::new(8, 2); // 4 nodes -> plenty of off-node
        let team = Team::new(topo);
        let reads = perfect_reads(&genome, 80, 4);
        let kcfg = KmerAnalysisConfig::new(21);
        let (spectrum, _) = analyze_kmers(&team, &reads, &kcfg);

        // Baseline.
        let ccfg = ContigConfig::new(21);
        let (base_set, base_reports) = generate_contigs(&team, &spectrum, &ccfg);

        // Oracle built from the baseline contigs.
        let oracle = crate::oracle_build::build_oracle(&base_set, &topo, 1 << 16);
        let mut ocfg = ContigConfig::new(21);
        ocfg.placement = std::sync::Arc::new(oracle).placement();
        let (oracle_set, oracle_reports) = generate_contigs(&team, &spectrum, &ocfg);

        let seqs =
            |s: &ContigSet| -> Vec<Vec<u8>> { s.contigs.iter().map(|c| c.seq.clone()).collect() };
        assert_eq!(seqs(&base_set), seqs(&oracle_set), "same contigs");

        let offnode = |reports: &[PhaseReport]| -> f64 {
            reports
                .iter()
                .find(|r| r.name.contains("traversal"))
                .unwrap()
                .offnode_fraction()
        };
        let base_frac = offnode(&base_reports);
        let oracle_frac = offnode(&oracle_reports);
        assert!(
            oracle_frac < base_frac * 0.5,
            "oracle must slash off-node lookups: {oracle_frac:.3} vs {base_frac:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "odd k")]
    fn even_k_is_rejected() {
        let topo = Topology::new(1, 1);
        let team = Team::new(topo);
        let codec = hipmer_dna::KmerCodec::new(4);
        let graph = DebruijnGraph {
            nodes: hipmer_pgas::DistHashMap::new(topo),
            codec,
        };
        let cfg = ContigConfig::new(4);
        let _ = traverse_graph(&team, &graph, &cfg);
    }
}
