//! Contigs: the uncontested linear sequences the traversal emits.

use hipmer_dna::KmerCodec;

/// One contig. Sequences are stored in canonical orientation (the
/// traversal's tie-break guarantees a deterministic orientation), ids are
/// assigned after a global sort so they are schedule-independent.
#[derive(Clone, Debug, PartialEq)]
pub struct Contig {
    /// Dense id, 0-based, assigned longest-first.
    pub id: usize,
    /// The contig sequence (length ≥ k).
    pub seq: Vec<u8>,
    /// Mean k-mer depth; 0 until the scaffolding depth stage fills it.
    pub depth: f64,
}

impl Contig {
    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the contig is empty (never true for traversal output).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// The complete contig set of one assembly.
#[derive(Clone, Debug)]
pub struct ContigSet {
    /// Contigs sorted by decreasing length (ties broken by sequence), with
    /// `id == index`.
    pub contigs: Vec<Contig>,
    /// The k-mer codec the contigs were built with.
    pub codec: KmerCodec,
}

impl ContigSet {
    /// Build from raw sequences: sorts longest-first and assigns ids.
    pub fn from_sequences(codec: KmerCodec, mut seqs: Vec<Vec<u8>>) -> Self {
        seqs.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        let contigs = seqs
            .into_iter()
            .enumerate()
            .map(|(id, seq)| Contig {
                id,
                seq,
                depth: 0.0,
            })
            .collect();
        ContigSet { contigs, codec }
    }

    /// Number of contigs.
    pub fn len(&self) -> usize {
        self.contigs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.contigs.is_empty()
    }

    /// Total assembled bases.
    pub fn total_bases(&self) -> usize {
        self.contigs.iter().map(Contig::len).sum()
    }

    /// N50: the length L such that contigs of length ≥ L cover half the
    /// assembled bases. The standard assembly contiguity metric.
    pub fn n50(&self) -> usize {
        let total = self.total_bases();
        let mut acc = 0usize;
        for c in &self.contigs {
            acc += c.len();
            if 2 * acc >= total {
                return c.len();
            }
        }
        0
    }

    /// The longest contig length.
    pub fn max_len(&self) -> usize {
        self.contigs.first().map(Contig::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(lens: &[usize]) -> ContigSet {
        let seqs = lens.iter().map(|&l| vec![b'A'; l]).collect();
        ContigSet::from_sequences(KmerCodec::new(21), seqs)
    }

    #[test]
    fn sorted_longest_first_with_dense_ids() {
        let s = set(&[10, 50, 30]);
        let lens: Vec<usize> = s.contigs.iter().map(Contig::len).collect();
        assert_eq!(lens, vec![50, 30, 10]);
        for (i, c) in s.contigs.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn n50_definition() {
        // Lengths 50+30+10 = 90; half = 45; cumulative 50 >= 45 -> N50 = 50.
        assert_eq!(set(&[10, 50, 30]).n50(), 50);
        // 10 x 10 = 100; half = 50; fifth contig reaches 50 -> N50 = 10.
        assert_eq!(set(&[10; 10]).n50(), 10);
        assert_eq!(set(&[]).n50(), 0);
    }

    #[test]
    fn deterministic_order_for_equal_lengths() {
        let a = ContigSet::from_sequences(
            KmerCodec::new(5),
            vec![b"CCCCC".to_vec(), b"AAAAA".to_vec()],
        );
        let b = ContigSet::from_sequences(
            KmerCodec::new(5),
            vec![b"AAAAA".to_vec(), b"CCCCC".to_vec()],
        );
        assert_eq!(a.contigs, b.contigs);
    }

    #[test]
    fn totals() {
        let s = set(&[10, 20]);
        assert_eq!(s.total_bases(), 30);
        assert_eq!(s.max_len(), 20);
        assert_eq!(s.len(), 2);
    }
}
