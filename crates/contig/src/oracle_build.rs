//! Offline construction of the oracle partitioning function (§3.2).
//!
//! Given a finished contig set, assign each contig a rank cyclically (load
//! balance), then claim the oracle-vector slot of every k-mer in the
//! contig for that rank. Collisions leave the first writer in place — the
//! affected k-mer will live on a "wrong" rank and cost one remote lookup
//! during traversal, which is why a larger vector (more memory) means less
//! communication. The build is off the critical path ("has to be completed
//! only once") and is reused across genomes of the same species or across
//! k-sweeps of one genome.

use crate::contig_set::ContigSet;
use hipmer_dna::{Kmer, KmerBuildHasher};
use hipmer_pgas::{OracleVector, Topology};
use std::hash::BuildHasher;

/// The placement hash for a k-mer — must agree with what
/// [`hipmer_pgas::DistHashMap`] computes for `Kmer` keys, since the oracle
/// vector is indexed by `uniform_hash(A)`.
#[inline]
pub fn kmer_placement_hash(km: &Kmer) -> u64 {
    KmerBuildHasher::default().hash_one(km)
}

/// Build an oracle vector with `slots` entries from `contigs`, targeting
/// `topo.ranks()` owners, keyed by the contigs' own k.
pub fn build_oracle(contigs: &ContigSet, topo: &Topology, slots: usize) -> OracleVector {
    build_oracle_for_k(contigs, topo, slots, contigs.codec.k())
}

/// As [`build_oracle`], but extract `k`-mers of a *different* k from the
/// contig sequences — the paper's second use case (§3.2): a draft
/// assembly at one k seeds the oracle for assemblies that sweep other k
/// values ("the new set of contigs will have a high degree of similarity
/// with the first draft assembly").
pub fn build_oracle_for_k(
    contigs: &ContigSet,
    topo: &Topology,
    slots: usize,
    k: usize,
) -> OracleVector {
    let mut oracle = OracleVector::new(slots, topo.ranks());
    let codec = hipmer_dna::KmerCodec::new(k);
    let codec = &codec;
    // Step 1: contig-to-rank assignment. The paper assigns cyclically "to
    // ensure load balance", which works when contigs vastly outnumber
    // ranks; at scaled-down contig counts we realize the same intent with
    // longest-processing-time assignment (contigs are already sorted
    // longest-first): each contig goes to the currently lightest rank, so
    // per-rank k-mer loads stay even. Deterministic tie-break by rank id.
    let mut heap: std::collections::BinaryHeap<(
        std::cmp::Reverse<usize>,
        std::cmp::Reverse<usize>,
    )> = (0..topo.ranks())
        .map(|r| (std::cmp::Reverse(0usize), std::cmp::Reverse(r)))
        .collect();
    for contig in contigs.contigs.iter() {
        let (std::cmp::Reverse(load), std::cmp::Reverse(rank)) =
            heap.pop().expect("at least one rank");
        // Step 2: claim every k-mer's slot for that rank.
        for (_, _, canon) in codec.canonical_kmers(&contig.seq) {
            oracle.assign(kmer_placement_hash(&canon), rank);
        }
        heap.push((
            std::cmp::Reverse(load + contig.len()),
            std::cmp::Reverse(rank),
        ));
    }
    oracle
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_dna::KmerCodec;

    fn lcg_genome(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    fn contig_set(n: usize, len: usize) -> ContigSet {
        let seqs = (0..n).map(|i| lcg_genome(len, i as u64 + 1)).collect();
        ContigSet::from_sequences(KmerCodec::new(21), seqs)
    }

    #[test]
    fn oracle_colocates_contig_kmers() {
        let topo = Topology::new(8, 4);
        let set = contig_set(16, 500);
        // Large vector: negligible collisions.
        let oracle = build_oracle(&set, &topo, 1 << 18);
        let codec = &set.codec;
        for contig in &set.contigs {
            let ranks: Vec<usize> = contig
                .seq
                .windows(21)
                .filter_map(|w| codec.pack(w))
                .map(|km| oracle.owner(kmer_placement_hash(&codec.canonical(km))))
                .collect();
            // Nearly all k-mers of one contig land on one rank; slot
            // collisions with other contigs leak a small fraction.
            let mut per_rank = [0usize; 8];
            for &r in &ranks {
                per_rank[r] += 1;
            }
            let dominant = *per_rank.iter().max().unwrap();
            let frac = dominant as f64 / ranks.len() as f64;
            assert!(
                frac > 0.9,
                "contig {}: only {frac:.2} of k-mers colocated",
                contig.id
            );
        }
    }

    #[test]
    fn cyclic_contig_assignment_balances_ranks() {
        let topo = Topology::new(4, 4);
        let set = contig_set(40, 300);
        let oracle = build_oracle(&set, &topo, 1 << 18);
        // Count slots per rank via sampling the contigs' k-mers.
        let codec = &set.codec;
        let mut per_rank = vec![0usize; 4];
        for contig in &set.contigs {
            if let Some(w) = contig.seq.windows(21).next() {
                let km = codec.canonical(codec.pack(w).unwrap());
                per_rank[oracle.owner(kmer_placement_hash(&km))] += 1;
            }
        }
        let max = *per_rank.iter().max().unwrap();
        let min = *per_rank.iter().min().unwrap();
        assert!(max - min <= 6, "imbalanced contig assignment {per_rank:?}");
    }

    #[test]
    fn smaller_vector_more_collisions() {
        let topo = Topology::new(8, 4);
        let set = contig_set(32, 400);
        let small = build_oracle(&set, &topo, 1 << 10);
        let large = build_oracle(&set, &topo, 1 << 16);
        assert!(
            large.collisions() < small.collisions(),
            "{} !< {}",
            large.collisions(),
            small.collisions()
        );
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
