//! Property tests for contig generation: the traversal must reconstruct
//! arbitrary clean genomes exactly, in every mode, at any concurrency.

use hipmer_contig::{generate_contigs, ContigConfig, TraversalMode};
use hipmer_dna::{revcomp, BASES};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{Team, Topology};
use hipmer_seqio::SeqRecord;
use proptest::prelude::*;

/// Tile a genome with overlapping error-free reads at depth ≥ 2.
fn tile(genome: &[u8], read_len: usize) -> Vec<SeqRecord> {
    let mut out = Vec::new();
    for offset in [0usize, read_len / 3, 2 * read_len / 3] {
        let mut pos = offset;
        loop {
            let end = (pos + read_len).min(genome.len());
            if end - pos >= 25 {
                out.push(SeqRecord::with_uniform_quality(
                    format!("r{pos}"),
                    genome[pos..end].to_vec(),
                    35,
                ));
            }
            if end == genome.len() {
                break;
            }
            pos += read_len / 2;
        }
    }
    // Second copy for the count threshold.
    let copy: Vec<SeqRecord> = out
        .iter()
        .map(|r| SeqRecord::with_uniform_quality(format!("{}x", r.id), r.seq.clone(), 35))
        .collect();
    out.extend(copy);
    out
}

fn genome_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(&BASES[..]), 300..1500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn contigs_are_genome_substrings_and_cover_interior(
        genome in genome_strategy(),
        ranks in 1usize..10,
        mode_pick in 0usize..3,
    ) {
        let k = 21;
        let reads = tile(&genome, 80);
        let team = Team::new(Topology::new(ranks, 4));
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(k));
        let mut cfg = ContigConfig::new(k);
        cfg.mode = [
            TraversalMode::Cooperative,
            TraversalMode::EndpointWalk,
            TraversalMode::Speculative,
        ][mode_pick];
        cfg.walk_cap = 64; // exercise subcontig chaining
        let (set, _) = generate_contigs(&team, &spectrum, &cfg);

        // Every contig is an exact substring of the genome or its reverse
        // complement (no chimeras, no invented bases).
        let rc = revcomp(&genome);
        for c in &set.contigs {
            let hit = genome.windows(c.len()).any(|w| w == &c.seq[..])
                || rc.windows(c.len()).any(|w| w == &c.seq[..]);
            prop_assert!(hit, "contig of length {} not in genome", c.len());
        }
        // Coverage: total assembled bases reach most of the genome
        // (boundary k-mers fall below the count threshold).
        if genome.len() > 500 {
            prop_assert!(
                set.total_bases() + 300 >= genome.len(),
                "assembled {} of {}",
                set.total_bases(),
                genome.len()
            );
        }
    }

    #[test]
    fn all_modes_agree(genome in genome_strategy(), ranks in 1usize..8) {
        let k = 21;
        let reads = tile(&genome, 80);
        let team = Team::new(Topology::new(ranks, 4));
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(k));
        let mut sets = Vec::new();
        for mode in [
            TraversalMode::Cooperative,
            TraversalMode::EndpointWalk,
            TraversalMode::Speculative,
        ] {
            let mut cfg = ContigConfig::new(k);
            cfg.mode = mode;
            cfg.walk_cap = 50;
            let (set, _) = generate_contigs(&team, &spectrum, &cfg);
            sets.push(
                set.contigs
                    .into_iter()
                    .map(|c| c.seq)
                    .collect::<Vec<_>>(),
            );
        }
        prop_assert_eq!(&sets[0], &sets[1]);
        prop_assert_eq!(&sets[0], &sets[2]);
    }
}
