//! Contig depths and termination states (§4.1).
//!
//! Each rank takes 1/p of the contigs, looks every contained k-mer up in
//! the k-mer table (one-sided reads; the table is only read after
//! construction, so no synchronization), sums the counts into a mean
//! depth, and classifies why each contig end stopped extending.
//!
//! The per-window lookups ship as batched multi-gets
//! ([`hipmer_pgas::DistHashMap::multi_get`] via
//! [`KmerSpectrum::get_batch`]): one message per owner rank per window
//! instead of one per k-mer, with identical results — the read-side
//! analogue of the aggregating stores used to build the table.

use hipmer_contig::ContigSet;
use hipmer_dna::{ExtChoice, Kmer};
use hipmer_kanalysis::KmerSpectrum;
use hipmer_pgas::{PhaseReport, RankCtx, Schedule, Team};

/// Why a contig stopped extending at one end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationState {
    /// The next k-mer does not exist in the table (dropped as erroneous or
    /// beyond coverage).
    DeadEnd,
    /// The next k-mer exists but is a fork (two high-quality neighbors —
    /// the diploid/repeat case §4.2 feeds on).
    Fork,
    /// The next k-mer exists and is UU but its back-pointer disagrees
    /// (non-mutual link).
    NonMutual,
}

/// Depth and end-state information for one contig.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContigEndInfo {
    /// Mean k-mer count over the contig.
    pub depth: f64,
    /// Termination at the sequence's left (`seq[0]`) end.
    pub left_state: TerminationState,
    /// The k-mer just beyond the left end (canonical), if derivable — the
    /// "attachment" the bubble finder keys on.
    pub left_attach: Option<Kmer>,
    /// Termination at the right end.
    pub right_state: TerminationState,
    /// The k-mer just beyond the right end (canonical).
    pub right_attach: Option<Kmer>,
}

/// Classify one contig end. `end_kmer` is the terminal k-mer *oriented in
/// contig direction*, `outward_left` selects which side points away from
/// the contig.
fn classify_end(
    ctx: &mut RankCtx,
    spectrum: &KmerSpectrum,
    end_kmer: Kmer,
    outward_left: bool,
) -> (TerminationState, Option<Kmer>) {
    let codec = &spectrum.codec;
    let canon = codec.canonical(end_kmer);
    let Some(entry) = spectrum.table.get(ctx, &canon) else {
        // The contig's own end k-mer vanished (should not happen for
        // traversal output, but tolerate foreign contig sets).
        return (TerminationState::DeadEnd, None);
    };
    let exts = if canon == end_kmer {
        entry.exts
    } else {
        entry.exts.flip()
    };
    let outward = if outward_left { exts.left } else { exts.right };
    match outward {
        ExtChoice::None => (TerminationState::DeadEnd, None),
        ExtChoice::Fork => (TerminationState::Fork, None),
        ExtChoice::Unique(b) => {
            let neighbor = if outward_left {
                codec.extend_left(end_kmer, b)
            } else {
                codec.extend_right(end_kmer, b)
            };
            let ncanon = codec.canonical(neighbor);
            match spectrum.table.get(ctx, &ncanon) {
                None => (TerminationState::DeadEnd, Some(ncanon)),
                Some(nentry) => {
                    // Orient the neighbor's extensions in walk direction;
                    // the side facing the contig is "back", the other is
                    // "far". A fork on either side is a branch point; a
                    // missing far extension means coverage ran out; a UU
                    // neighbor means the traversal stopped for mutuality.
                    let nexts = if ncanon == neighbor {
                        nentry.exts
                    } else {
                        nentry.exts.flip()
                    };
                    let (far, back) = if outward_left {
                        (nexts.left, nexts.right)
                    } else {
                        (nexts.right, nexts.left)
                    };
                    use hipmer_dna::ExtChoice as E;
                    let state = match (far, back) {
                        (E::Fork, _) | (_, E::Fork) => TerminationState::Fork,
                        (E::None, _) | (_, E::None) => TerminationState::DeadEnd,
                        _ => TerminationState::NonMutual,
                    };
                    (state, Some(ncanon))
                }
            }
        }
    }
}

/// Compute depth and end states for every contig (parallel over contigs).
/// Returns per-contig info indexed by contig id, and the phase report.
///
/// `schedule` picks how windows are dealt to ranks: [`Schedule::Static`]
/// gives each rank one contiguous block; [`Schedule::Dynamic`] deals
/// guided chunks weighted by window k-mer count, which absorbs the skew
/// of long-tail contig length distributions (trailing windows are short).
pub fn compute_depths(
    team: &Team,
    spectrum: &KmerSpectrum,
    contigs: &ContigSet,
    schedule: Schedule,
) -> (Vec<ContigEndInfo>, PhaseReport) {
    let codec = &spectrum.codec;
    let k = codec.k();

    // Work units are fixed-size windows of k-mers, not whole contigs: a
    // single dominant contig would otherwise serialize onto one rank (the
    // assemblies in the paper have millions of contigs; small test genomes
    // may have one).
    const WINDOW: usize = 1024;
    let mut windows: Vec<(usize, usize)> = Vec::new(); // (contig, window index)
    let mut weights: Vec<u64> = Vec::new(); // k-mers in the window
    for (ci, c) in contigs.contigs.iter().enumerate() {
        let n_kmers = c.seq.len().saturating_sub(k) + 1;
        for w in 0..n_kmers.div_ceil(WINDOW).max(1) {
            windows.push((ci, w));
            let lo = w * WINDOW;
            weights.push(((lo + WINDOW).min(n_kmers).saturating_sub(lo)) as u64);
        }
    }

    let (chunks, mut stats) = team.run_named("scaffold/depths", |ctx| {
        // Per-window partial sums plus end info computed by the windows
        // that hold the contig's first/last k-mer.
        let mut partial: Vec<(usize, u64, u64)> = Vec::new(); // (contig, sum, n)
        let mut ends: Vec<(usize, bool, TerminationState, Option<Kmer>)> = Vec::new();
        let mine: Vec<usize> = schedule
            .ranges_weighted(ctx, &weights)
            .into_iter()
            .flatten()
            .collect();
        for &(ci, w) in mine.iter().map(|&i| &windows[i]) {
            let contig = &contigs.contigs[ci];
            let n_kmers = contig.seq.len() - k + 1;
            let lo = w * WINDOW;
            let hi = (lo + WINDOW).min(n_kmers);
            // Resolve the window's k-mers as one batched multi-get per
            // owner rank instead of one message per k-mer; the k-mer table
            // is frozen after analysis, so the batch sees the same values a
            // get-per-key loop would.
            let kmers: Vec<Kmer> = (lo..hi)
                .filter_map(|off| codec.pack(&contig.seq[off..off + k]))
                .collect();
            ctx.stats.compute((hi - lo) as u64);
            let mut sum = 0u64;
            let mut n = 0u64;
            for entry in spectrum.get_batch(ctx, &kmers).into_iter().flatten() {
                sum += entry.count as u64;
                n += 1;
            }
            partial.push((ci, sum, n));
            if lo == 0 {
                let first = codec
                    .pack(&contig.seq[..k])
                    .expect("contig starts with k clean bases");
                let (state, attach) = classify_end(ctx, spectrum, first, true);
                ends.push((ci, true, state, attach));
            }
            if hi == n_kmers {
                let last = codec
                    .pack(&contig.seq[contig.seq.len() - k..])
                    .expect("contig ends with k clean bases");
                let (state, attach) = classify_end(ctx, spectrum, last, false);
                ends.push((ci, false, state, attach));
            }
        }
        (partial, ends)
    });
    spectrum.table.drain_service_into(&mut stats);

    let mut info = vec![
        ContigEndInfo {
            depth: 0.0,
            left_state: TerminationState::DeadEnd,
            left_attach: None,
            right_state: TerminationState::DeadEnd,
            right_attach: None,
        };
        contigs.contigs.len()
    ];
    let mut sums = vec![(0u64, 0u64); contigs.contigs.len()];
    for (partial, ends) in chunks {
        for (ci, s, n) in partial {
            sums[ci].0 += s;
            sums[ci].1 += n;
        }
        for (ci, is_left, state, attach) in ends {
            if is_left {
                info[ci].left_state = state;
                info[ci].left_attach = attach;
            } else {
                info[ci].right_state = state;
                info[ci].right_attach = attach;
            }
        }
    }
    for (ci, (s, n)) in sums.into_iter().enumerate() {
        info[ci].depth = if n == 0 { 0.0 } else { s as f64 / n as f64 };
    }
    (
        info,
        PhaseReport::new("scaffold/depths", *team.topo(), stats),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_contig::{generate_contigs, ContigConfig};
    use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
    use hipmer_pgas::Topology;
    use hipmer_seqio::SeqRecord;

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    fn tile_reads(genome: &[u8], read_len: usize, depth: usize) -> Vec<SeqRecord> {
        let mut out = Vec::new();
        for d in 0..depth {
            let mut pos = d * 11 % 40;
            while pos + read_len <= genome.len() {
                out.push(SeqRecord::with_uniform_quality(
                    format!("r{d}_{pos}"),
                    genome[pos..pos + read_len].to_vec(),
                    35,
                ));
                pos += 40;
            }
        }
        out
    }

    #[test]
    fn depth_reflects_coverage() {
        let genome = lcg(2000, 1);
        let team = Team::new(Topology::new(4, 2));
        let reads = tile_reads(&genome, 80, 6);
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(21));
        let (contigs, _) = generate_contigs(&team, &spectrum, &ContigConfig::new(21));
        let (info, _) = compute_depths(&team, &spectrum, &contigs, Schedule::Static);
        assert_eq!(info.len(), contigs.len());
        // Reads tile at stride 40 with 6 offsets over 80bp reads -> each
        // base covered ~12x; interior k-mer count ≈ reads covering it.
        let d = info[0].depth;
        assert!(d > 4.0 && d < 20.0, "depth {d}");
    }

    #[test]
    fn clean_genome_ends_are_dead_ends() {
        let genome = lcg(1500, 3);
        let team = Team::new(Topology::new(2, 2));
        let reads = tile_reads(&genome, 80, 6);
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(21));
        let (contigs, _) = generate_contigs(&team, &spectrum, &ContigConfig::new(21));
        let (info, _) = compute_depths(&team, &spectrum, &contigs, Schedule::Static);
        // The dominant contig's ends stop because coverage runs out.
        let main = &info[0];
        assert_eq!(main.left_state, TerminationState::DeadEnd);
        assert_eq!(main.right_state, TerminationState::DeadEnd);
    }

    #[test]
    fn snp_bubble_ends_report_fork_and_shared_attachment() {
        // Two haplotypes differing by one SNP in the middle.
        let h1 = lcg(800, 5);
        let mut h2 = h1.clone();
        h2[400] = match h2[400] {
            b'A' => b'C',
            _ => b'A',
        };
        let mut reads = tile_reads(&h1, 80, 4);
        reads.extend(tile_reads(&h2, 80, 4));
        let team = Team::new(Topology::new(2, 2));
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(21));
        let (contigs, _) = generate_contigs(&team, &spectrum, &ContigConfig::new(21));
        let (info, _) = compute_depths(&team, &spectrum, &contigs, Schedule::Static);

        // Expect ≥4 contigs: two flanks + two bubble arms. The bubble arms
        // (length 2k-1 = 41) terminate at forks on both sides and share
        // attachment k-mers pairwise.
        let arms: Vec<usize> = (0..contigs.len())
            .filter(|&i| contigs.contigs[i].len() < 100)
            .collect();
        assert!(arms.len() >= 2, "expected bubble arms, got {:?}", arms);
        let a0 = &info[arms[0]];
        let a1 = &info[arms[1]];
        assert_eq!(a0.left_state, TerminationState::Fork);
        assert_eq!(a0.right_state, TerminationState::Fork);
        // Shared attachments (possibly swapped left/right since arms are
        // canonical-oriented independently).
        let set0: std::collections::HashSet<_> =
            [a0.left_attach, a0.right_attach].into_iter().collect();
        let set1: std::collections::HashSet<_> =
            [a1.left_attach, a1.right_attach].into_iter().collect();
        assert_eq!(set0, set1, "bubble arms must share attachment k-mers");
    }
}
