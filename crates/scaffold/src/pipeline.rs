//! The complete scaffolding pipeline: §4.1 → §4.8 in order.

use crate::bubbles::merge_bubbles;
use crate::depths::compute_depths;
use crate::gapclose::{close_gaps, GapCloseConfig, GapCloseStats};
use crate::inserts::estimate_insert_size;
use crate::links::{generate_links, LinkConfig};
use crate::scaffolds::ScaffoldSet;
use crate::splints::{locate_splints_and_spans, SplintSpanConfig};
use crate::ties::order_and_orient;
use hipmer_align::{align_reads, AlignConfig, Alignment};
use hipmer_contig::ContigSet;
use hipmer_kanalysis::KmerSpectrum;
use hipmer_pgas::{PartitionScheme, PhaseReport, Schedule, Team};
use hipmer_seqio::SeqRecord;
use std::ops::Range;

/// Scaffolding configuration.
#[derive(Clone, Debug)]
pub struct ScaffoldConfig {
    /// merAligner settings.
    pub align: AlignConfig,
    /// Link support thresholds.
    pub link: LinkConfig,
    /// Gap-closing settings.
    pub gap: GapCloseConfig,
    /// Fallback insert size when a library yields no same-contig pairs.
    pub default_insert: f64,
    /// Scaffolding rounds (the paper's wheat pipeline runs four).
    pub rounds: usize,
    /// Contigs shorter than this do not participate in links/ties (repeat
    /// scraps produce conflicting links; Meraculous likewise scaffolds
    /// only sufficiently long contigs).
    pub min_tie_contig: usize,
    /// Contigs whose depth exceeds this factor times the median depth are
    /// treated as repeats and masked from links/ties.
    pub repeat_depth_factor: f64,
    /// Work schedule for the skew-prone scaffold stages (depths, bubbles).
    /// The per-module configs carry their own copies; use
    /// [`ScaffoldConfig::with_schedule`] to set all of them at once.
    pub schedule: Schedule,
}

impl ScaffoldConfig {
    /// Defaults for a given seed length.
    pub fn new(seed_len: usize) -> Self {
        ScaffoldConfig {
            align: AlignConfig::new(seed_len),
            link: LinkConfig::default(),
            gap: GapCloseConfig::default(),
            default_insert: 400.0,
            rounds: 1,
            min_tie_contig: 100,
            repeat_depth_factor: 1.75,
            schedule: Schedule::Static,
        }
    }

    /// Set one schedule for every scaffold stage (depths, bubbles,
    /// alignment, gap closing).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self.align.schedule = schedule;
        self.gap.schedule = schedule;
        self
    }

    /// Set the k-mer partition scheme for every scaffold stage that owns a
    /// k-mer-keyed table (currently the merAligner seed index; gap closing
    /// keys its bucket table by contig end and deals reads by index, so it
    /// has no k-mer ownership to re-home).
    pub fn with_partition(mut self, partition: PartitionScheme) -> Self {
        self.align.partition = partition;
        self
    }
}

/// Everything the scaffolder produces.
pub struct ScaffoldOutput {
    /// Final scaffolds with gap-closed sequences.
    pub scaffolds: ScaffoldSet,
    /// The contig set the final round scaffolded (post bubble merging).
    pub contigs: ContigSet,
    /// Per-library insert estimates (mean, sd) actually used.
    pub insert_means: Vec<f64>,
    /// Gap-closing outcome counters, summed over rounds.
    pub gap_stats: GapCloseStats,
    /// One report per module execution, in order.
    pub reports: Vec<PhaseReport>,
}

/// Select the alignments belonging to a read-index range (alignments are
/// sorted by read).
fn alignment_slice<'a>(alignments: &'a [Alignment], reads: &Range<usize>) -> &'a [Alignment] {
    let lo = alignments.partition_point(|a| (a.read as usize) < reads.start);
    let hi = alignments.partition_point(|a| (a.read as usize) < reads.end);
    &alignments[lo..hi]
}

/// Run the full scaffolding pipeline.
///
/// `lib_ranges` partitions the read indices by library (paired reads
/// `2i`/`2i+1` must share a library); insert sizes are estimated per
/// library, exactly as §4.4 prescribes.
pub fn scaffold_pipeline(
    team: &Team,
    spectrum: &KmerSpectrum,
    raw_contigs: &ContigSet,
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &ScaffoldConfig,
) -> ScaffoldOutput {
    let (contigs, mut reports) = prepare_contigs(team, spectrum, raw_contigs, cfg.schedule);
    let mut out = scaffold_rounds(team, spectrum, contigs, reads, lib_ranges, cfg, None);
    reports.append(&mut out.reports);
    out.reports = reports;
    out
}

/// The scaffold-preparation stage: §4.1 contig depths/termination states
/// followed by §4.2 bubble merging. Returns the merged contig set every
/// later module (alignment, links, ties, gap closing) operates on.
///
/// Split out of [`scaffold_pipeline`] so the checkpoint/restart machinery
/// can persist the merged contigs at a stage boundary.
pub fn prepare_contigs(
    team: &Team,
    spectrum: &KmerSpectrum,
    raw_contigs: &ContigSet,
    schedule: Schedule,
) -> (ContigSet, Vec<PhaseReport>) {
    let mut reports: Vec<PhaseReport> = Vec::new();

    // §4.1 Contig depths and termination states.
    let (info, r) = compute_depths(team, spectrum, raw_contigs, schedule);
    reports.push(r);

    // §4.2 Bubble merging (the output is "contigs" from here on).
    let (contigs, r) = merge_bubbles(team, raw_contigs, &info, schedule);
    reports.push(r);

    (contigs, reports)
}

/// The per-round scaffolding loop: §4.3 alignment through §4.8 gap
/// closing, `cfg.rounds` times, over the *prepared* (bubble-merged)
/// contig set from [`prepare_contigs`].
///
/// `round0_alignments`, when provided, replaces round 0's
/// [`align_reads`] call (later rounds always re-align against the
/// round's rebuilt contigs). Round-0 alignment depends only on the
/// prepared contigs, the reads, and `cfg.align` — not on the round's
/// depth mask — so results are byte-identical either way. This is the
/// hook the checkpoint/restart machinery uses to persist alignments at a
/// stage boundary; when it fires, the align phase reports belong to the
/// alignment stage and are *not* repeated here.
#[allow(clippy::too_many_arguments)]
pub fn scaffold_rounds(
    team: &Team,
    spectrum: &KmerSpectrum,
    mut contigs: ContigSet,
    reads: &[SeqRecord],
    lib_ranges: &[Range<usize>],
    cfg: &ScaffoldConfig,
    round0_alignments: Option<Vec<Alignment>>,
) -> ScaffoldOutput {
    let mut reports: Vec<PhaseReport> = Vec::new();
    let mut round0_alignments = round0_alignments;
    let mut gap_stats = GapCloseStats::default();
    let mut insert_means: Vec<f64> = Vec::new();
    let mut result: Option<ScaffoldSet> = None;

    for round in 0..cfg.rounds.max(1) {
        // Repeat/short-contig mask: depth and length over the current
        // contig set. Masked contigs never join ties (they scaffold as
        // singletons); gap closing can still walk through their sequence.
        let (round_info, r) = compute_depths(team, spectrum, &contigs, cfg.schedule);
        reports.push(r);
        // Median depth weighted by contig length over tie-eligible contigs:
        // short error-derived contigs sit at the count threshold and would
        // otherwise poison the repeat cutoff.
        let mut weighted: Vec<(f64, usize)> = contigs
            .contigs
            .iter()
            .zip(&round_info)
            .filter(|(c, _)| c.len() >= cfg.min_tie_contig)
            .map(|(c, i)| (i.depth, c.len()))
            .collect();
        weighted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let half: usize = weighted.iter().map(|(_, l)| l).sum::<usize>() / 2;
        let mut acc = 0usize;
        let mut median_depth = 0.0;
        for (d, l) in &weighted {
            acc += l;
            median_depth = *d;
            if acc >= half {
                break;
            }
        }
        let masked: Vec<bool> = contigs
            .contigs
            .iter()
            .zip(&round_info)
            .map(|(c, i)| {
                c.len() < cfg.min_tie_contig
                    || (median_depth > 0.0 && i.depth > cfg.repeat_depth_factor * median_depth)
            })
            .collect();

        // §4.3 merAligner (round 0 may be satisfied from a checkpointed
        // alignment set — see the function docs).
        let provided = if round == 0 {
            round0_alignments.take()
        } else {
            None
        };
        let alignments = match provided {
            Some(alns) => alns,
            None => {
                let (alns, rs) = align_reads(team, &contigs, reads, &cfg.align);
                reports.extend(rs);
                alns
            }
        };

        // §4.4 insert sizes + §4.5 splints/spans, per library.
        let mut splints = Vec::new();
        let mut spans = Vec::new();
        insert_means.clear();
        for range in lib_ranges {
            let lib_alns = alignment_slice(&alignments, range);
            let (est, r) = estimate_insert_size(team, lib_alns, 3);
            reports.push(r);
            let mean = est.map(|e| e.mean).unwrap_or(cfg.default_insert);
            insert_means.push(mean);
            let sscfg = SplintSpanConfig::new(mean);
            let lens: Vec<usize> = contigs.contigs.iter().map(|c| c.len()).collect();
            let (sp, sn, r) = locate_splints_and_spans(team, lib_alns, &lens, &sscfg);
            reports.push(r);
            splints.extend(sp);
            spans.extend(sn);
        }
        splints.retain(|s| s.ends.iter().all(|(c, _)| !masked[*c as usize]));
        spans.retain(|s| s.ends.iter().all(|(c, _)| !masked[*c as usize]));

        // §4.6 links.
        let (links, r) = generate_links(team, &splints, &spans, &cfg.link);
        reports.push(r);

        // §4.7 ordering and orientation.
        let (scaffolds, r) = order_and_orient(team, &contigs, &links);
        reports.push(r);

        // §4.8 gap closing.
        let (set, gs, r) = close_gaps(team, &contigs, &scaffolds, &alignments, reads, &cfg.gap);
        reports.push(r);
        gap_stats.merge_in(&gs);

        if round + 1 < cfg.rounds {
            // Next round scaffolds the current scaffolds.
            contigs = ContigSet::from_sequences(contigs.codec, set.sequences.clone());
            result = Some(set);
        } else {
            result = Some(set);
        }
    }

    ScaffoldOutput {
        scaffolds: result.expect("at least one round"),
        contigs,
        insert_means,
        gap_stats,
        reports,
    }
}

impl GapCloseStats {
    /// Public merge used by the pipeline across rounds.
    pub fn merge_in(&mut self, o: &GapCloseStats) {
        let mut tmp = *self;
        tmp.overlap_joined += o.overlap_joined;
        tmp.spanned += o.spanned;
        tmp.walked += o.walked;
        tmp.patched += o.patched;
        tmp.nfilled += o.nfilled;
        *self = tmp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_contig::{generate_contigs, ContigConfig};
    use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
    use hipmer_pgas::Topology;
    use hipmer_readsim::{human_like_dataset, Dataset};

    fn run_pipeline(dataset: &Dataset, topo: Topology) -> (ScaffoldOutput, usize) {
        let team = Team::new(topo);
        let reads = dataset.all_reads();
        let mut lib_ranges = Vec::new();
        let mut start = 0usize;
        for lib in &dataset.reads_per_library {
            lib_ranges.push(start..start + lib.len());
            start += lib.len();
        }
        let kcfg = KmerAnalysisConfig::new(21);
        let (spectrum, _) = analyze_kmers(&team, &reads, &kcfg);
        let (contigs, _) = generate_contigs(&team, &spectrum, &ContigConfig::new(21));
        let n_raw = contigs.len();
        let out = scaffold_pipeline(
            &team,
            &spectrum,
            &contigs,
            &reads,
            &lib_ranges,
            &ScaffoldConfig::new(15),
        );
        (out, n_raw)
    }

    #[test]
    fn end_to_end_scaffolding_improves_contiguity() {
        let dataset = human_like_dataset(40_000, 18.0, false, 42);
        let (out, _) = run_pipeline(&dataset, Topology::new(4, 2));
        assert!(!out.scaffolds.is_empty());
        let genome_len = dataset.genomes[0].reference_len();
        // The scaffold N50 must reach a large fraction of the genome.
        assert!(
            out.scaffolds.n50() > genome_len / 3,
            "scaffold N50 {} vs genome {}",
            out.scaffolds.n50(),
            genome_len
        );
        // Insert estimation found the short library's ~395bp insert.
        assert!(
            (out.insert_means[0] - 395.0).abs() < 40.0,
            "insert {:?}",
            out.insert_means
        );
    }

    #[test]
    fn pipeline_is_deterministic_across_concurrency() {
        let dataset = human_like_dataset(25_000, 16.0, false, 7);
        let (a, _) = run_pipeline(&dataset, Topology::new(1, 1));
        let (b, _) = run_pipeline(&dataset, Topology::new(8, 4));
        assert_eq!(a.scaffolds.sequences, b.scaffolds.sequences);
    }
}
