//! Ordering and orientation of contigs (§4.7).
//!
//! Links are consolidated into *ties* between contigs; the tie graph is
//! traversed by selecting seed contigs in order of decreasing length
//! ("this heuristic tries to lock together first 'long' contigs") and
//! locking contigs into scaffolds. The traversal is inherently serial, but
//! the tie graph is orders of magnitude smaller than the k-mer graph, so
//! its runtime is insignificant — the paper found exactly that, and the
//! serial seconds are recorded on the phase report to keep the claim
//! checkable.

use crate::links::{ContigEnd, Link};
use crate::scaffolds::{Scaffold, ScaffoldMember};
use hipmer_contig::ContigSet;
use hipmer_pgas::{PhaseReport, Team};
use std::collections::HashMap;

/// Build scaffolds from links by greedy reciprocal-best tie locking.
pub fn order_and_orient(
    team: &Team,
    contigs: &ContigSet,
    links: &[Link],
) -> (Vec<Scaffold>, PhaseReport) {
    // Parallel part: each rank consolidates 1/p of the links into per-end
    // best candidates (in UPC this walks the links table's local buckets).
    let (best_lists, stats) = team.run_named("scaffold/ties", |ctx| {
        let mut best: HashMap<(u32, ContigEnd), Link> = HashMap::new();
        for l in &links[ctx.chunk(links.len())] {
            ctx.stats.compute(1);
            for end in [l.key.0, l.key.1] {
                match best.get(&end) {
                    Some(cur) if better(cur, l) => {}
                    _ => {
                        best.insert(end, *l);
                    }
                }
            }
        }
        best.into_iter().collect::<Vec<_>>()
    });

    // Serial part: merge the per-rank bests, then traverse ties.
    let serial_start = std::time::Instant::now();
    let mut best: HashMap<(u32, ContigEnd), Link> = HashMap::new();
    for (end, l) in best_lists.into_iter().flatten() {
        match best.get(&end) {
            Some(cur) if better(cur, &l) => {}
            _ => {
                best.insert(end, l);
            }
        }
    }

    // A tie is usable iff it is the best link of BOTH of its ends
    // (reciprocal best — repeats produce conflicting links that lose this
    // filter).
    let mut tie: HashMap<(u32, ContigEnd), ((u32, ContigEnd), i64)> = HashMap::new();
    for l in best.values() {
        let (a, b) = l.key;
        if a.0 == b.0 {
            continue; // self-tie (palindromic repeat)
        }
        let best_a = best.get(&a);
        let best_b = best.get(&b);
        if best_a.map(|x| x.key) == Some(l.key) && best_b.map(|x| x.key) == Some(l.key) {
            tie.insert(a, (b, l.gap));
            tie.insert(b, (a, l.gap));
        }
    }

    // Seed contigs in decreasing length; lock chains.
    let n = contigs.contigs.len();
    let mut used = vec![false; n];
    let mut scaffolds = Vec::new();
    for seed in 0..n {
        if used[seed] {
            continue;
        }
        // Walk left from the seed to find the chain start. (The seed is
        // NOT marked used yet — it is picked up when the rightward walk
        // passes back over it.)
        let mut start = (seed as u32, ContigEnd::Left);
        let mut guard = 0usize;
        while let Some(&(prev, _gap)) = tie.get(&start) {
            if used[prev.0 as usize] && prev.0 as usize != seed {
                break;
            }
            if prev.0 as usize == seed {
                break; // cycle
            }
            start = (prev.0, prev.1.other());
            guard += 1;
            if guard > n {
                break;
            }
        }
        // start = (contig, outward end). Orient so the outward end is on
        // the scaffold's left.
        let first = start.0;
        let first_reversed = start.1 == ContigEnd::Right;
        let mut members = vec![ScaffoldMember {
            contig: first,
            reversed: first_reversed,
            gap_before: 0,
        }];
        used[first as usize] = true;
        let mut cursor = (first, start.1.other());
        let mut guard = 0usize;
        while let Some(&(next, gap)) = tie.get(&cursor) {
            if used[next.0 as usize] {
                break;
            }
            used[next.0 as usize] = true;
            members.push(ScaffoldMember {
                contig: next.0,
                // Joining via its Left end means forward orientation.
                reversed: next.1 == ContigEnd::Right,
                gap_before: gap,
            });
            cursor = (next.0, next.1.other());
            guard += 1;
            if guard > n {
                break;
            }
        }
        scaffolds.push(Scaffold { members });
    }
    let serial_seconds = serial_start.elapsed().as_secs_f64();

    (
        scaffolds,
        PhaseReport::new("scaffold/ties", *team.topo(), stats).with_serial(serial_seconds),
    )
}

/// Whether link `cur` beats `cand` (more support, then tighter gap, then
/// key order for determinism).
fn better(cur: &Link, cand: &Link) -> bool {
    (cur.support, -cur.gap, cand.key) > (cand.support, -cand.gap, cur.key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::{end_key, LinkKind};
    use hipmer_dna::KmerCodec;
    use hipmer_pgas::Topology;

    fn contigs(n: usize) -> ContigSet {
        // Longest first so id = index ordering is stable: lengths 100-n..100.
        let seqs = (0..n).map(|i| vec![b'A'; 100 - i]).collect();
        ContigSet::from_sequences(KmerCodec::new(21), seqs)
    }

    fn link(c1: u32, e1: ContigEnd, c2: u32, e2: ContigEnd, gap: i64, support: u32) -> Link {
        Link {
            key: end_key((c1, e1), (c2, e2)),
            gap,
            support,
            kind: LinkKind::Span,
        }
    }

    #[test]
    fn chain_of_three_forms_one_scaffold() {
        let team = Team::new(Topology::new(2, 2));
        let cs = contigs(3);
        // 0.Right - 1.Left, 1.Right - 2.Left.
        let links = vec![
            link(0, ContigEnd::Right, 1, ContigEnd::Left, 10, 5),
            link(1, ContigEnd::Right, 2, ContigEnd::Left, 20, 5),
        ];
        let (scaffolds, _) = order_and_orient(&team, &cs, &links);
        assert_eq!(scaffolds.len(), 1);
        let m = &scaffolds[0].members;
        assert_eq!(m.len(), 3);
        let order: Vec<u32> = m.iter().map(|x| x.contig).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(m.iter().all(|x| !x.reversed));
        assert_eq!(m[1].gap_before, 10);
        assert_eq!(m[2].gap_before, 20);
    }

    #[test]
    fn orientation_flips_when_joining_right_end() {
        let team = Team::new(Topology::new(1, 1));
        let cs = contigs(2);
        // 0.Right meets 1.Right: contig 1 must be reversed.
        let links = vec![link(0, ContigEnd::Right, 1, ContigEnd::Right, 15, 4)];
        let (scaffolds, _) = order_and_orient(&team, &cs, &links);
        assert_eq!(scaffolds.len(), 1);
        let m = &scaffolds[0].members;
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].contig, 0);
        assert!(!m[0].reversed);
        assert_eq!(m[1].contig, 1);
        assert!(m[1].reversed);
    }

    #[test]
    fn conflicting_links_break_at_repeat() {
        let team = Team::new(Topology::new(1, 1));
        let cs = contigs(4);
        // Both 0 and 1 claim 2.Left; the weaker tie loses reciprocal-best
        // and its contig scaffolds alone.
        let links = vec![
            link(0, ContigEnd::Right, 2, ContigEnd::Left, 10, 8),
            link(1, ContigEnd::Right, 2, ContigEnd::Left, 10, 3),
            link(2, ContigEnd::Right, 3, ContigEnd::Left, 10, 5),
        ];
        let (scaffolds, _) = order_and_orient(&team, &cs, &links);
        // Expect {0,2,3} together and {1} alone.
        let sizes: Vec<usize> = scaffolds.iter().map(|s| s.members.len()).collect();
        assert!(sizes.contains(&3), "{scaffolds:?}");
        assert!(sizes.contains(&1));
        let solo = scaffolds.iter().find(|s| s.members.len() == 1).unwrap();
        assert_eq!(solo.members[0].contig, 1);
    }

    #[test]
    fn unlinked_contigs_become_singletons() {
        let team = Team::new(Topology::new(1, 1));
        let cs = contigs(3);
        let (scaffolds, _) = order_and_orient(&team, &cs, &[]);
        assert_eq!(scaffolds.len(), 3);
        assert!(scaffolds.iter().all(|s| s.members.len() == 1));
    }

    #[test]
    fn every_contig_appears_exactly_once() {
        let team = Team::new(Topology::new(4, 2));
        let cs = contigs(10);
        let links = vec![
            link(0, ContigEnd::Right, 5, ContigEnd::Left, 10, 5),
            link(5, ContigEnd::Right, 7, ContigEnd::Left, 10, 5),
            link(2, ContigEnd::Right, 3, ContigEnd::Right, 10, 5),
        ];
        let (scaffolds, _) = order_and_orient(&team, &cs, &links);
        let mut seen = vec![0usize; 10];
        for s in &scaffolds {
            for m in &s.members {
                seen[m.contig as usize] += 1;
            }
        }
        assert_eq!(seen, vec![1; 10]);
    }
}
