//! Bubble detection and the bubble–contig graph (§4.2).
//!
//! A *bubble* is a pair of contigs flanked by the same fork k-mers — in a
//! diploid genome, the two haplotype arms around a heterozygous site. The
//! contig set is contracted into a **bubble–contig graph** (orders of
//! magnitude smaller than the k-mer graph): vertices are contigs,
//! connections run through the shared attachment k-mers computed in §4.1.
//! Qualifying bubbles are merged by keeping the deeper arm, and the
//! resulting chains of contigs are compressed into single sequences; the
//! output is what the rest of scaffolding calls "contigs".

use crate::depths::ContigEndInfo;
use hipmer_contig::ContigSet;
use hipmer_dna::{revcomp, Kmer, BASES};
use hipmer_pgas::{AggregatingStores, DistHashMap, PhaseReport, Schedule, Team};

/// Merge bubbles and compress contig chains.
///
/// Returns the new contig set (merged paths plus untouched contigs;
/// absorbed bubble arms dropped) and the phase report. The final chain
/// compression is serial (the graph is tiny — the paper's speculative
/// traversal spends ~99% of its time in parallel walks precisely because
/// there is so little of it); its wall time is recorded as the report's
/// serial seconds.
///
/// `schedule` controls how the parallel grouping/attachment passes deal
/// contigs to ranks; per-contig work here is near-uniform, so the dynamic
/// variant runs unweighted.
pub fn merge_bubbles(
    team: &Team,
    contigs: &ContigSet,
    info: &[ContigEndInfo],
    schedule: Schedule,
) -> (ContigSet, PhaseReport) {
    assert_eq!(info.len(), contigs.contigs.len());
    let n = contigs.contigs.len();
    let codec = contigs.codec;
    let k = codec.k();

    // An empty contig set has no median depth to gate on; short-circuit
    // instead of letting `median_depth = 0.0` pretend the guard is armed.
    if n == 0 {
        let stats = vec![hipmer_pgas::CommStats::new(); team.topo().ranks()];
        return (
            ContigSet::from_sequences(codec, Vec::new()),
            PhaseReport::new("scaffold/bubbles", *team.topo(), stats),
        );
    }

    // Depth gate for bubble absorption: heterozygous arms carry ~half the
    // genome-wide depth (one haplotype each), while the divergent bridges
    // of a segmental duplication carry *full* depth (each copy is
    // sequenced independently). Absorbing the latter would weld the two
    // repeat copies into a mosaic — a real misassembly. Use the
    // length-weighted median depth as the genome-wide reference.
    // `total_cmp` keeps the sort total even if a depth is NaN (a foreign
    // contig set whose depth stage never ran): NaNs sort to the end and
    // a NaN median simply disarms absorption below, rather than panicking.
    let mut weighted: Vec<(f64, usize)> = contigs
        .contigs
        .iter()
        .zip(info)
        .map(|(c, i)| (i.depth, c.len()))
        .collect();
    weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let half_bases: usize = weighted.iter().map(|(_, l)| l).sum::<usize>() / 2;
    let mut acc = 0usize;
    let mut median_depth = 0.0f64;
    for (d, l) in &weighted {
        acc += l;
        median_depth = *d;
        if acc >= half_bases {
            break;
        }
    }
    let max_arm_depth = 0.75 * median_depth;

    // Phase A (parallel): bubble grouping. Key = the normalized pair of
    // attachment k-mers; contigs sharing both attachments are bubble arms.
    let bubble_groups: DistHashMap<(Kmer, Kmer), Vec<u32>> = DistHashMap::new(*team.topo());
    let (_, mut stats) = team.run_named("scaffold/bubbles/group", |ctx| {
        let mut agg =
            AggregatingStores::new(&bubble_groups, |a: &mut Vec<u32>, b: Vec<u32>| a.extend(b));
        for ci in schedule.ranges(ctx, n).into_iter().flatten() {
            let i = &info[ci];
            if let (Some(la), Some(ra)) = (i.left_attach, i.right_attach) {
                let key = if la <= ra { (la, ra) } else { (ra, la) };
                let ci32 = u32::try_from(ci)
                    .expect("contig index exceeds u32::MAX; the bubble-contig graph uses u32 ids");
                agg.push(ctx, key, vec![ci32]);
            }
            ctx.stats.compute(1);
        }
        agg.finish(ctx);
    });
    bubble_groups.drain_service_into(&mut stats);

    // Phase B (parallel over local buckets): pick bubble survivors.
    let (absorbed_lists, stats_b) = team.run_named("scaffold/bubbles/survivors", |ctx| {
        bubble_groups.fold_local(ctx, Vec::<u32>::new(), |mut absorbed, _key, group| {
            if group.len() >= 2 {
                // Arms must be length-similar (SNP/small-indel bubbles).
                let mut arms: Vec<u32> = group.clone();
                arms.sort_unstable();
                let base_len = contigs.contigs[arms[0] as usize].len();
                let similar: Vec<u32> = arms
                    .into_iter()
                    .filter(|&c| {
                        let l = contigs.contigs[c as usize].len();
                        let lo = base_len.min(l);
                        let hi = base_len.max(l);
                        hi - lo <= (hi / 10).max(2) && info[c as usize].depth <= max_arm_depth
                    })
                    .collect();
                if similar.len() >= 2 {
                    // Survivor: max depth, then smallest id. `total_cmp`
                    // keeps the comparison total under NaN depths.
                    let survivor = *similar
                        .iter()
                        .max_by(|&&a, &&b| {
                            info[a as usize]
                                .depth
                                .total_cmp(&info[b as usize].depth)
                                .then(b.cmp(&a))
                        })
                        .unwrap();
                    absorbed.extend(similar.iter().copied().filter(|&c| c != survivor));
                }
            }
            absorbed
        })
    });
    for (a, b) in stats.iter_mut().zip(&stats_b) {
        a.merge(b);
    }
    let mut absorbed = vec![false; n];
    for c in absorbed_lists.into_iter().flatten() {
        absorbed[c as usize] = true;
    }

    // Phase C (parallel): attachment incidence for chain edges.
    let attachments: DistHashMap<Kmer, Vec<(u32, u8)>> = DistHashMap::new(*team.topo());
    let (_, stats_c) = team.run_named("scaffold/bubbles/attachments", |ctx| {
        let mut agg =
            AggregatingStores::new(&attachments, |a: &mut Vec<(u32, u8)>, b: Vec<(u32, u8)>| {
                a.extend(b)
            });
        for ci in schedule.ranges(ctx, n).into_iter().flatten() {
            if absorbed[ci] {
                continue;
            }
            let i = &info[ci];
            let ci32 = u32::try_from(ci)
                .expect("contig index exceeds u32::MAX; the bubble-contig graph uses u32 ids");
            if let Some(la) = i.left_attach {
                agg.push(ctx, la, vec![(ci32, 0)]);
            }
            if let Some(ra) = i.right_attach {
                agg.push(ctx, ra, vec![(ci32, 1)]);
            }
        }
        agg.finish(ctx);
    });
    attachments.drain_service_into(&mut stats);
    for (a, b) in stats.iter_mut().zip(&stats_c) {
        a.merge(b);
    }

    // Phase D (parallel): unambiguous joins — exactly two distinct contig
    // ends at one attachment k-mer.
    let (edge_lists, stats_d) = team.run_named("scaffold/bubbles/joins", |ctx| {
        attachments.fold_local(
            ctx,
            Vec::<((u32, u8), (u32, u8))>::new(),
            |mut edges, _km, ends| {
                if ends.len() == 2 && ends[0].0 != ends[1].0 {
                    let mut pair = [ends[0], ends[1]];
                    pair.sort_unstable();
                    edges.push((pair[0], pair[1]));
                }
                edges
            },
        )
    });
    for (a, b) in stats.iter_mut().zip(&stats_d) {
        a.merge(b);
    }
    let mut edges: Vec<((u32, u8), (u32, u8))> = edge_lists.into_iter().flatten().collect();
    edges.sort_unstable();
    edges.dedup();

    // Phase E (serial; tiny graph): walk the chains and stitch sequences.
    let serial_start = std::time::Instant::now();
    // adjacency[contig][side] -> (other contig, other side)
    let mut adj: Vec<[Option<(u32, u8)>; 2]> = vec![[None, None]; n];
    for ((c1, s1), (c2, s2)) in &edges {
        // A contig end may appear in several edges only if the attachment
        // analysis was ambiguous; keep the first (sorted order).
        if adj[*c1 as usize][*s1 as usize].is_none() && adj[*c2 as usize][*s2 as usize].is_none() {
            adj[*c1 as usize][*s1 as usize] = Some((*c2, *s2));
            adj[*c2 as usize][*s2 as usize] = Some((*c1, *s1));
        }
    }

    let mut used = vec![false; n];
    let mut out_seqs: Vec<Vec<u8>> = Vec::new();
    for start in 0..n {
        if used[start] || absorbed[start] {
            continue;
        }
        // Find the chain's leftmost element: walk "left" (side 0 in the
        // walking orientation) until a free end or a cycle closes.
        let mut cur = (start as u32, 0u8); // (contig, side we entered from)
        let mut guard = 0usize;
        while let Some(prev) = adj[cur.0 as usize][cur.1 as usize] {
            let next = (prev.0, 1 - prev.1);
            if next.0 as usize == start && guard > 0 {
                break; // cycle
            }
            cur = next;
            guard += 1;
            if guard > n {
                break;
            }
        }
        // Walk right from the chain start, stitching.
        let first_contig = cur.0 as usize;
        let first_oriented = if cur.1 == 0 {
            contigs.contigs[first_contig].seq.clone()
        } else {
            revcomp(&contigs.contigs[first_contig].seq)
        };
        used[first_contig] = true;
        let mut seq = first_oriented;
        let mut cursor = (cur.0, 1 - cur.1); // the end we exit from
        let mut guard = 0usize;
        while let Some((nc, ns)) = adj[cursor.0 as usize][cursor.1 as usize] {
            if used[nc as usize] {
                break; // cycle closed
            }
            // Orient the next contig so that its joining end (ns) is its
            // left end.
            let next_oriented = if ns == 0 {
                contigs.contigs[nc as usize].seq.clone()
            } else {
                revcomp(&contigs.contigs[nc as usize].seq)
            };
            // Bridge: seq's last k-mer R, fork F = R[1..] + b, next starts
            // with F[1..]. Find the base b that makes the overlap check out.
            let tail = &seq[seq.len() - (k - 1)..];
            let mut bridged = false;
            for &b in &BASES {
                // Candidate fork k-mer suffix = tail[1..] + b must equal
                // next_oriented[..k-1].
                if next_oriented.len() >= k - 1
                    && next_oriented[..k - 2] == tail[1..]
                    && next_oriented[k - 2] == b
                {
                    // next_oriented[k-2] IS the fork base b; appending from
                    // k-2 adds b plus everything after it exactly once.
                    seq.extend_from_slice(&next_oriented[k - 2..]);
                    bridged = true;
                    break;
                }
            }
            if !bridged {
                break; // inconsistent join; leave the rest as its own chain
            }
            used[nc as usize] = true;
            cursor = (nc, 1 - ns);
            guard += 1;
            if guard > n {
                break;
            }
        }
        out_seqs.push(hipmer_dna::canonical_seq(seq));
    }
    let serial_seconds = serial_start.elapsed().as_secs_f64();

    let new_set = ContigSet::from_sequences(codec, out_seqs);
    let report =
        PhaseReport::new("scaffold/bubbles", *team.topo(), stats).with_serial(serial_seconds);
    (new_set, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depths::compute_depths;
    use hipmer_contig::{generate_contigs, ContigConfig};
    use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
    use hipmer_pgas::Topology;
    use hipmer_seqio::SeqRecord;

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(23);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    fn tile_reads(genome: &[u8], read_len: usize, depth: usize) -> Vec<SeqRecord> {
        let mut out = Vec::new();
        for d in 0..depth {
            let mut pos = d * 13 % 37;
            while pos + read_len <= genome.len() {
                out.push(SeqRecord::with_uniform_quality(
                    format!("r{d}_{pos}"),
                    genome[pos..pos + read_len].to_vec(),
                    35,
                ));
                pos += 37;
            }
        }
        out
    }

    /// Assemble a diploid pair and run depths + bubbles.
    fn run_bubbles(h1: &[u8], h2: &[u8], topo: Topology) -> (ContigSet, ContigSet) {
        let team = Team::new(topo);
        let mut reads = tile_reads(h1, 80, 4);
        reads.extend(tile_reads(h2, 80, 4));
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(21));
        let (contigs, _) = generate_contigs(&team, &spectrum, &ContigConfig::new(21));
        let (info, _) = compute_depths(&team, &spectrum, &contigs, Schedule::Static);
        let (merged, _) = merge_bubbles(&team, &contigs, &info, Schedule::Static);
        (contigs, merged)
    }

    #[test]
    fn snp_bubble_collapses_to_one_long_contig() {
        let h1 = lcg(1200, 41);
        let mut h2 = h1.clone();
        h2[600] = match h2[600] {
            b'A' => b'G',
            b'G' => b'A',
            b'C' => b'T',
            _ => b'C',
        };
        let (raw, merged) = run_bubbles(&h1, &h2, Topology::new(2, 2));
        assert!(
            raw.len() >= 4,
            "expected a bubble, got {} contigs",
            raw.len()
        );
        // After merging, the dominant contig spans (almost) the genome.
        assert!(
            merged.max_len() > 1000,
            "bubble merge failed: max len {} (raw max {})",
            merged.max_len(),
            raw.max_len()
        );
        // And the merged contig matches one of the haplotypes around the
        // SNP (no chimera of both).
        let big = &merged.contigs[0].seq;
        let h1rc = revcomp(&h1);
        let h2rc = revcomp(&h2);
        let contained = [&h1[..], &h2[..], &h1rc[..], &h2rc[..]]
            .iter()
            .any(|h| h.windows(big.len()).any(|w| w == &big[..]));
        assert!(contained, "merged contig is not a haplotype substring");
    }

    #[test]
    fn two_bubbles_merge_into_one_chain() {
        let h1 = lcg(2000, 77);
        let mut h2 = h1.clone();
        for &pos in &[500usize, 1400] {
            h2[pos] = match h2[pos] {
                b'A' => b'C',
                b'C' => b'A',
                b'G' => b'T',
                _ => b'G',
            };
        }
        let (raw, merged) = run_bubbles(&h1, &h2, Topology::new(4, 2));
        assert!(raw.len() >= 7, "expected two bubbles, got {}", raw.len());
        assert!(
            merged.max_len() > 1800,
            "chain compression failed: {}",
            merged.max_len()
        );
    }

    #[test]
    fn haploid_input_is_unchanged() {
        let g = lcg(1000, 9);
        let team = Team::new(Topology::new(2, 2));
        let reads = tile_reads(&g, 80, 4);
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(21));
        let (contigs, _) = generate_contigs(&team, &spectrum, &ContigConfig::new(21));
        let (info, _) = compute_depths(&team, &spectrum, &contigs, Schedule::Static);
        let (merged, _) = merge_bubbles(&team, &contigs, &info, Schedule::Static);
        let a: Vec<&Vec<u8>> = contigs.contigs.iter().map(|c| &c.seq).collect();
        let b: Vec<&Vec<u8>> = merged.contigs.iter().map(|c| &c.seq).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_contig_set_is_handled_explicitly() {
        let team = Team::new(Topology::new(2, 2));
        let empty = ContigSet::from_sequences(hipmer_dna::KmerCodec::new(21), Vec::new());
        let (merged, report) = merge_bubbles(&team, &empty, &[], Schedule::Static);
        assert!(merged.is_empty());
        assert_eq!(report.name, "scaffold/bubbles");
    }

    #[test]
    fn nan_depths_do_not_panic() {
        use crate::depths::TerminationState;
        // A foreign contig set whose depth stage never ran: depths are NaN.
        // The median sort and the survivor selection must stay total — and
        // a NaN depth gate must disarm absorption, not corrupt it.
        let codec = hipmer_dna::KmerCodec::new(21);
        let seq_a: Vec<u8> = lcg(60, 7);
        let mut seq_b = seq_a.clone();
        seq_b[30] = match seq_b[30] {
            b'A' => b'C',
            _ => b'A',
        };
        let set = ContigSet::from_sequences(codec, vec![seq_a.clone(), seq_b.clone()]);
        let ka = codec.pack(&seq_a[..21]).unwrap();
        let kb = codec.pack(&seq_a[seq_a.len() - 21..]).unwrap();
        let info: Vec<ContigEndInfo> = (0..2)
            .map(|i| ContigEndInfo {
                depth: if i == 0 { f64::NAN } else { 1.0 },
                left_state: TerminationState::Fork,
                left_attach: Some(ka),
                right_state: TerminationState::Fork,
                right_attach: Some(kb),
            })
            .collect();
        let team = Team::new(Topology::new(2, 2));
        let (merged, _) = merge_bubbles(&team, &set, &info, Schedule::Static);
        // With a NaN in the depth pool the absorption gate cannot qualify
        // both arms, so nothing is merged away silently.
        assert!(!merged.is_empty());
    }

    #[test]
    fn bubble_merge_is_schedule_independent() {
        let h1 = lcg(900, 123);
        let mut h2 = h1.clone();
        h2[450] = match h2[450] {
            b'T' => b'A',
            _ => b'T',
        };
        let (_, m1) = run_bubbles(&h1, &h2, Topology::new(1, 1));
        let (_, m2) = run_bubbles(&h1, &h2, Topology::new(8, 4));
        let s1: Vec<&Vec<u8>> = m1.contigs.iter().map(|c| &c.seq).collect();
        let s2: Vec<&Vec<u8>> = m2.contigs.iter().map(|c| &c.seq).collect();
        assert_eq!(s1, s2);
    }
}
