//! Gap closing (§4.8).
//!
//! For every gap between adjacent scaffold members, the reads mapping near
//! the two flanking contig ends (and their mates, which often dangle into
//! the gap) are gathered by projecting the alignments into the gaps. The
//! closure methods run in the paper's order of increasing cost:
//!
//! 1. **spanning** — a single read contains the end of one flank and the
//!    start of the other;
//! 2. **k-mer walk** — a mini-assembly across the gap from the candidate
//!    reads, with iteratively increasing k, first right-to-left... first
//!    from the left flank, then from the right;
//! 3. **patching** — overlap the two incomplete walks.
//!
//! Unclosed gaps are N-filled with the link's gap estimate. Gaps are
//! distributed **round-robin** across ranks: closure costs vary by orders
//! of magnitude and gaps of one scaffold tend to cost alike, so blocked
//! distribution (the ablation toggle) suffers load imbalance.

use crate::links::ContigEnd;
use crate::scaffolds::{Scaffold, ScaffoldSet};
use hipmer_align::Alignment;
use hipmer_contig::ContigSet;
use hipmer_dna::{revcomp, Kmer, KmerCodec, KmerHashMap};
use hipmer_pgas::{AggregatingStores, DistHashMap, PhaseReport, RankCtx, Schedule, Team};
use hipmer_seqio::SeqRecord;
use std::collections::HashMap;

/// Gap-closing configuration.
#[derive(Clone, Debug)]
pub struct GapCloseConfig {
    /// Flank length taken from each side of the gap.
    pub flank: usize,
    /// Exact anchor length for the spanning method.
    pub anchor: usize,
    /// K values for the iterative k-mer walks (odd, increasing).
    pub walk_ks: Vec<usize>,
    /// Minimum k-mer multiplicity to follow during a walk.
    pub walk_min_count: u32,
    /// Maximum bases a walk may add.
    pub max_walk: usize,
    /// Minimum exact overlap for patching two half-walks.
    pub min_patch_overlap: usize,
    /// Window around a contig end within which alignments nominate reads.
    pub end_window: usize,
    /// Cap on N-fill length for failed closures.
    pub max_nfill: usize,
    /// Round-robin gap distribution (false = blocked; ablation). Only
    /// consulted under [`Schedule::Static`].
    pub round_robin: bool,
    /// How work is dealt to ranks. [`Schedule::Dynamic`] replaces the
    /// round-robin/blocked split with guided chunks weighted by flanking
    /// contig length (a locally computable proxy for closure cost);
    /// closures are merged positionally, so output is byte-identical.
    pub schedule: Schedule,
}

impl Default for GapCloseConfig {
    fn default() -> Self {
        GapCloseConfig {
            flank: 120,
            anchor: 16,
            walk_ks: vec![17, 25, 33],
            walk_min_count: 2,
            max_walk: 2000,
            min_patch_overlap: 15,
            end_window: 600,
            max_nfill: 5000,
            round_robin: true,
            schedule: Schedule::Static,
        }
    }
}

/// Closure outcome counters (the paper's method mix).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GapCloseStats {
    /// Joined by a proven contig overlap.
    pub overlap_joined: usize,
    /// Closed by a spanning read.
    pub spanned: usize,
    /// Closed by a k-mer walk.
    pub walked: usize,
    /// Closed by patching two half-walks.
    pub patched: usize,
    /// Left as N runs.
    pub nfilled: usize,
}

impl GapCloseStats {
    /// Total gaps processed.
    pub fn total(&self) -> usize {
        self.overlap_joined + self.spanned + self.walked + self.patched + self.nfilled
    }

    /// Gaps actually closed with sequence.
    pub fn closed(&self) -> usize {
        self.total() - self.nfilled
    }

    fn merge(&mut self, o: &GapCloseStats) {
        self.overlap_joined += o.overlap_joined;
        self.spanned += o.spanned;
        self.walked += o.walked;
        self.patched += o.patched;
        self.nfilled += o.nfilled;
    }
}

/// How one junction was resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Closure {
    /// Drop `o` bases from the start of the next member (contig overlap).
    Overlap(usize),
    /// Insert these bases between the members.
    Fill(Vec<u8>),
    /// Insert `n` unknown bases.
    NFill(usize),
}

/// One gap task.
#[derive(Clone, Copy, Debug)]
struct Gap {
    scaffold: usize,
    junction: usize, // joins members[junction] and members[junction+1]
}

/// Find `needle` in `hay` (first occurrence).
fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    hay.windows(needle.len()).position(|w| w == needle)
}

/// The oriented sequence of a scaffold member.
fn member_seq(contigs: &ContigSet, scaffold: &Scaffold, idx: usize) -> Vec<u8> {
    let m = &scaffold.members[idx];
    let seq = &contigs.contigs[m.contig as usize].seq;
    if m.reversed {
        revcomp(seq)
    } else {
        seq.clone()
    }
}

/// The gap-side end of a member's contig, in the contig's own orientation.
fn gap_side_end(scaffold: &Scaffold, idx: usize, leading: bool) -> ContigEnd {
    let m = &scaffold.members[idx];
    // `leading` = the member precedes the gap (gap at its scaffold-right).
    match (leading, m.reversed) {
        (true, false) => ContigEnd::Right,
        (true, true) => ContigEnd::Left,
        (false, false) => ContigEnd::Left,
        (false, true) => ContigEnd::Right,
    }
}

/// Walk rightward from the last `k`-mer of `seed` using read k-mers,
/// stopping when `target` (a k-mer) is reached or limits hit. Returns the
/// appended bases on success (`Ok`) or the partial extension (`Err`).
fn kmer_walk(
    table: &KmerHashMap<Kmer, [u32; 4]>,
    codec: &KmerCodec,
    seed: &[u8],
    target: Kmer,
    min_count: u32,
    max_walk: usize,
    ctx: &mut RankCtx,
) -> Result<Vec<u8>, Vec<u8>> {
    let k = codec.k();
    let Some(mut cur) = codec.pack(&seed[seed.len() - k..]) else {
        return Err(Vec::new());
    };
    let mut appended = Vec::new();
    for _ in 0..max_walk {
        if cur == target {
            // The last k appended bases are the target k-mer itself, which
            // belongs to the far flank — the gap fill excludes them. A
            // success with fewer than k appended bases means the flanks
            // overlap; report it as a failed walk so the overlap/patch
            // paths handle it.
            if appended.len() < k {
                return Err(appended);
            }
            appended.truncate(appended.len() - k);
            return Ok(appended);
        }
        ctx.stats.compute(1);
        let Some(votes) = table.get(&cur) else {
            return Err(appended);
        };
        // Unique next base above threshold.
        let mut next_base = None;
        for (b, &v) in votes.iter().enumerate() {
            if v >= min_count {
                if next_base.is_some() {
                    return Err(appended); // fork in the gap
                }
                next_base = Some(b as u8);
            }
        }
        let Some(b) = next_base else {
            return Err(appended);
        };
        cur = codec.extend_right(cur, b);
        appended.push(hipmer_dna::decode_base(b));
    }
    Err(appended)
}

/// Build the oriented k-mer table (k-mer → right-extension votes) from the
/// candidate reads, both orientations.
fn walk_table(codec: &KmerCodec, reads: &[&SeqRecord]) -> KmerHashMap<Kmer, [u32; 4]> {
    let k = codec.k();
    let mut table: KmerHashMap<Kmer, [u32; 4]> = KmerHashMap::default();
    let mut add = |seq: &[u8]| {
        for (off, km) in codec.kmers(seq) {
            if off + k < seq.len() {
                if let Some(code) = hipmer_dna::encode_base(seq[off + k]) {
                    table.entry(km).or_insert([0; 4])[code as usize] += 1;
                }
            }
        }
    };
    for r in reads {
        add(&r.seq);
        add(&revcomp(&r.seq));
    }
    table
}

/// Attempt to close one gap. Returns the closure and which method worked.
#[allow(clippy::too_many_arguments)]
fn close_one(
    ctx: &mut RankCtx,
    cfg: &GapCloseConfig,
    prev_seq: &[u8],
    next_seq: &[u8],
    gap_est: i64,
    candidates: &[&SeqRecord],
    stats: &mut GapCloseStats,
) -> Closure {
    let flank = cfg.flank;
    let prev_flank = &prev_seq[prev_seq.len().saturating_sub(flank)..];
    let next_flank = &next_seq[..flank.min(next_seq.len())];

    // Method 0: proven contig overlap (splint-style negative gaps).
    if gap_est < 0 {
        let want = (-gap_est) as usize;
        for o in (want.saturating_sub(5)..=want + 5).rev() {
            if o > 0
                && o <= prev_flank.len()
                && o <= next_flank.len()
                && prev_flank[prev_flank.len() - o..] == next_flank[..o]
            {
                stats.overlap_joined += 1;
                return Closure::Overlap(o);
            }
        }
    }

    let m = cfg.anchor;
    // Method 1: spanning read.
    if prev_flank.len() >= m && next_flank.len() >= m {
        let a1 = &prev_flank[prev_flank.len() - m..];
        let a2 = &next_flank[..m];
        for r in candidates {
            let rc = revcomp(&r.seq);
            for seq in [&r.seq, &rc] {
                ctx.stats.compute(seq.len() as u64);
                let Some(p1) = find(seq, a1) else { continue };
                let Some(off2) = find(&seq[p1..], a2) else {
                    continue;
                };
                let p2 = p1 + off2;
                if p2 >= p1 + m {
                    stats.spanned += 1;
                    return Closure::Fill(seq[p1 + m..p2].to_vec());
                } else if p2 > p1 {
                    // The anchors overlap in the read: contigs overlap.
                    stats.spanned += 1;
                    return Closure::Overlap(p1 + m - p2);
                }
            }
        }
    }

    // Method 2: iterative k-mer walks, increasing k until one direction
    // crosses the whole gap (the paper: "with iteratively increasing k-mer
    // sizes until the gap is closed", right-side attempt after the left
    // fails). The partial extensions from the largest k are kept for
    // patching.
    let mut best_partials: Option<(Vec<u8>, Vec<u8>)> = None;
    for &kw in &cfg.walk_ks {
        if prev_flank.len() < kw || next_flank.len() < kw {
            continue;
        }
        let codec = KmerCodec::new(kw);
        let table = walk_table(&codec, candidates);
        let target = codec
            .pack(&next_flank[..kw])
            .expect("contig flanks are clean DNA");
        // Left-to-right walk.
        let partial_fwd = match kmer_walk(
            &table,
            &codec,
            prev_flank,
            target,
            cfg.walk_min_count,
            cfg.max_walk,
            ctx,
        ) {
            Ok(fill) => {
                stats.walked += 1;
                return Closure::Fill(fill);
            }
            Err(p) => p,
        };
        // Right-to-left walk (walk right on the reverse complement).
        let rc_next = revcomp(next_flank);
        let rc_target = codec
            .pack(&revcomp(&prev_flank[prev_flank.len() - kw..]))
            .expect("clean flank");
        let partial_back = match kmer_walk(
            &table,
            &codec,
            &rc_next,
            rc_target,
            cfg.walk_min_count,
            cfg.max_walk,
            ctx,
        ) {
            Ok(fill_rc) => {
                stats.walked += 1;
                return Closure::Fill(revcomp(&fill_rc));
            }
            Err(p) => revcomp(&p),
        };
        best_partials = Some((partial_fwd, partial_back));
    }

    // Method 3: patch across the two incomplete traversals (largest-k
    // partials). The overlap must be exact AND unambiguous — a repeat
    // shorter than the walk k can otherwise glue the halves at the wrong
    // copy and duplicate sequence.
    if let Some((partial_fwd, partial_back)) = best_partials {
        let s1: Vec<u8> = prev_flank
            .iter()
            .chain(partial_fwd.iter())
            .copied()
            .collect();
        let s2: Vec<u8> = partial_back
            .iter()
            .chain(next_flank.iter())
            .copied()
            .collect();
        let max_o = s1.len().min(s2.len());
        let mut found: Option<usize> = None;
        for o in (cfg.min_patch_overlap..=max_o).rev() {
            ctx.stats.compute(o as u64);
            if s1[s1.len() - o..] == s2[..o] {
                if found.is_some() {
                    found = None; // ambiguous: two candidate overlaps
                    break;
                }
                found = Some(o);
            }
        }
        if let Some(o) = found {
            // fill = partial_fwd + partial_back[o..] (the first o bases of
            // s2 are already present at the end of s1), trimmed to the
            // joined length minus the flanks.
            let fill_len = (partial_fwd.len() + partial_back.len()).saturating_sub(o);
            let mut fill = Vec::with_capacity(fill_len);
            fill.extend_from_slice(&partial_fwd);
            if o < partial_back.len() {
                fill.extend_from_slice(&partial_back[o..]);
            }
            fill.truncate(fill_len);
            stats.patched += 1;
            return Closure::Fill(fill);
        }
    }

    stats.nfilled += 1;
    Closure::NFill((gap_est.max(1) as usize).min(cfg.max_nfill))
}

/// Close all gaps and emit final scaffold sequences.
#[allow(clippy::too_many_arguments)]
pub fn close_gaps(
    team: &Team,
    contigs: &ContigSet,
    scaffolds: &[Scaffold],
    alignments: &[Alignment],
    reads: &[SeqRecord],
    cfg: &GapCloseConfig,
) -> (ScaffoldSet, GapCloseStats, PhaseReport) {
    // Phase 1 (parallel): project alignments into contig-end read buckets.
    let buckets: DistHashMap<(u32, ContigEnd), Vec<u32>> = DistHashMap::new(*team.topo());
    let (_, mut stats) = team.run_named("scaffold/gap-closing/buckets", |ctx| {
        let mut agg = AggregatingStores::new(&buckets, |a: &mut Vec<u32>, b: Vec<u32>| a.extend(b));
        for a in cfg
            .schedule
            .ranges(ctx, alignments.len())
            .into_iter()
            .flatten()
            .map(|i| &alignments[i])
        {
            ctx.stats.compute(1);
            let len = contigs.contigs[a.contig as usize].len();
            let mate = a.read ^ 1;
            if (a.contig_start as usize) < cfg.end_window {
                agg.push(ctx, (a.contig, ContigEnd::Left), vec![a.read, mate]);
            }
            if a.contig_end as usize + cfg.end_window > len {
                agg.push(ctx, (a.contig, ContigEnd::Right), vec![a.read, mate]);
            }
        }
        agg.finish(ctx);
    });
    buckets.drain_service_into(&mut stats);

    // Enumerate gaps.
    let mut gaps: Vec<Gap> = Vec::new();
    for (si, s) in scaffolds.iter().enumerate() {
        for j in 0..s.gaps() {
            gaps.push(Gap {
                scaffold: si,
                junction: j,
            });
        }
    }

    // Phase 2 (parallel): close gaps. Under the static schedule gaps go
    // round-robin (or blocked, the ablation); under the dynamic schedule
    // they are dealt as guided chunks weighted by flanking contig length —
    // the locally computable proxy for closure cost (longer flanks attract
    // more candidate reads and longer walks).
    let ranks = team.ranks();
    let gap_weights: Vec<u64> = gaps
        .iter()
        .map(|g| {
            let s = &scaffolds[g.scaffold];
            let prev = contigs.contigs[s.members[g.junction].contig as usize].len();
            let next = contigs.contigs[s.members[g.junction + 1].contig as usize].len();
            (prev + next) as u64
        })
        .collect();
    let (closure_lists, stats2) = team.run_named("scaffold/gap-closing/close", |ctx| {
        let my_gaps: Vec<usize> = match cfg.schedule {
            Schedule::Dynamic => ctx
                .dynamic_ranges_weighted(&gap_weights)
                .into_iter()
                .flatten()
                .collect(),
            // Round-robin here deals *gaps* (work units) to ranks; it is
            // not k-mer ownership, so it stays modulo-based regardless of
            // the table partitioner.
            Schedule::Static if cfg.round_robin => {
                (0..gaps.len()).filter(|g| g % ranks == ctx.rank).collect()
            }
            Schedule::Static => ctx.chunk(gaps.len()).collect(),
        };
        let mut out: Vec<(usize, usize, Closure)> = Vec::new();
        let mut local_stats = GapCloseStats::default();
        for gap in my_gaps.iter().map(|&gi| &gaps[gi]) {
            let scaffold = &scaffolds[gap.scaffold];
            let prev_seq = member_seq(contigs, scaffold, gap.junction);
            let next_seq = member_seq(contigs, scaffold, gap.junction + 1);
            let gap_est = scaffold.members[gap.junction + 1].gap_before;

            // Gather candidate reads from both flanking end buckets.
            let prev_end = (
                scaffold.members[gap.junction].contig,
                gap_side_end(scaffold, gap.junction, true),
            );
            let next_end = (
                scaffold.members[gap.junction + 1].contig,
                gap_side_end(scaffold, gap.junction + 1, false),
            );
            // One multi-get resolves both flank buckets (at most two
            // owners, so at most two messages instead of two per key).
            let mut read_ids: Vec<u32> = Vec::new();
            for list in buckets
                .multi_get(ctx, &[prev_end, next_end])
                .into_iter()
                .flatten()
            {
                read_ids.extend(list);
            }
            read_ids.sort_unstable();
            read_ids.dedup();
            // Fetch the read sequences, coalesced by owner rank: each
            // owner is asked once per gap with one message carrying all
            // of its candidate reads (bytes in full, as always).
            let mut per_owner: HashMap<usize, u64> = HashMap::new();
            let mut candidates: Vec<&SeqRecord> = Vec::with_capacity(read_ids.len());
            for &ri in &read_ids {
                let ri = ri as usize;
                if ri < reads.len() {
                    // Reads live on ranks cyclically by *index* (they are
                    // never keyed into a partitioned table), so this modulo
                    // is the read array's home rank, not k-mer ownership.
                    *per_owner.entry(ri % ranks).or_insert(0) += reads[ri].seq.len() as u64;
                    candidates.push(&reads[ri]);
                }
            }
            let mut owners: Vec<(usize, u64)> = per_owner.into_iter().collect();
            owners.sort_unstable();
            for (owner, bytes) in owners {
                ctx.access(owner, bytes);
                ctx.stats.lookup_batches += 1;
            }

            let closure = close_one(
                ctx,
                cfg,
                &prev_seq,
                &next_seq,
                gap_est,
                &candidates,
                &mut local_stats,
            );
            out.push((gap.scaffold, gap.junction, closure));
        }
        (out, local_stats)
    });
    let mut gstats = GapCloseStats::default();
    let mut closures: Vec<Vec<Option<Closure>>> =
        scaffolds.iter().map(|s| vec![None; s.gaps()]).collect();
    for (list, ls) in closure_lists {
        gstats.merge(&ls);
        for (si, j, c) in list {
            closures[si][j] = Some(c);
        }
    }
    for (a, b) in stats.iter_mut().zip(&stats2) {
        a.merge(b);
    }

    // Phase 3 (parallel over scaffolds): stitch final sequences.
    let (seq_lists, stats3) = team.run_named("scaffold/gap-closing/stitch", |ctx| {
        let mut out: Vec<(usize, Vec<u8>)> = Vec::new();
        for si in cfg
            .schedule
            .ranges(ctx, scaffolds.len())
            .into_iter()
            .flatten()
        {
            let s = &scaffolds[si];
            let mut seq = member_seq(contigs, s, 0);
            for (j, closure) in closures[si].iter().enumerate().take(s.gaps()) {
                let next = member_seq(contigs, s, j + 1);
                match closure.as_ref().expect("every gap was processed") {
                    Closure::Overlap(o) => {
                        let o = (*o).min(next.len());
                        seq.extend_from_slice(&next[o..]);
                    }
                    Closure::Fill(f) => {
                        seq.extend_from_slice(f);
                        seq.extend_from_slice(&next);
                    }
                    Closure::NFill(n) => {
                        seq.extend(std::iter::repeat_n(b'N', *n));
                        seq.extend_from_slice(&next);
                    }
                }
                ctx.stats.compute(seq.len() as u64 / 64);
            }
            out.push((si, seq));
        }
        out
    });
    for (a, b) in stats.iter_mut().zip(&stats3) {
        a.merge(b);
    }
    let mut sequences: Vec<Vec<u8>> = vec![Vec::new(); scaffolds.len()];
    for (si, seq) in seq_lists.into_iter().flatten() {
        sequences[si] = seq;
    }

    (
        ScaffoldSet {
            scaffolds: scaffolds.to_vec(),
            sequences,
        },
        gstats,
        PhaseReport::new("scaffold/gap-closing", *team.topo(), stats),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaffolds::ScaffoldMember;
    use hipmer_pgas::Topology;

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(41);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    /// A two-contig scaffold over a known genome with reads tiling the gap.
    struct Fixture {
        contigs: ContigSet,
        scaffolds: Vec<Scaffold>,
        alignments: Vec<Alignment>,
        reads: Vec<SeqRecord>,
        genome: Vec<u8>,
    }

    fn fixture(gap_len: usize, read_len: usize, with_reads: bool) -> Fixture {
        let a = lcg(400, 1);
        let gap = lcg(gap_len, 2);
        let b = lcg(400, 3);
        let mut genome = a.clone();
        genome.extend_from_slice(&gap);
        genome.extend_from_slice(&b);

        let contigs = ContigSet::from_sequences(KmerCodec::new(21), vec![a.clone(), b.clone()]);
        let a_id = contigs.contigs.iter().position(|c| c.seq == a).unwrap() as u32;
        let b_id = contigs.contigs.iter().position(|c| c.seq == b).unwrap() as u32;
        let scaffolds = vec![Scaffold {
            members: vec![
                ScaffoldMember {
                    contig: a_id,
                    reversed: false,
                    gap_before: 0,
                },
                ScaffoldMember {
                    contig: b_id,
                    reversed: false,
                    gap_before: gap_len as i64,
                },
            ],
        }];

        // Paired reads tiling the junction region (pair mates 150 bases
        // apart, like a short-insert library): a gap-interior read gets
        // nominated through its contig-aligned mate, exactly as in the
        // real pipeline.
        let mut reads = Vec::new();
        let mut alignments = Vec::new();
        if with_reads {
            let pair_off = 150usize;
            let lo = 400usize.saturating_sub(200);
            let hi = (400 + gap_len + 200).min(genome.len()) - read_len - pair_off;
            let mut idx = 0u32;
            // Emit an alignment for a read wherever it overlaps a contig.
            let align_if_on_contig = |idx: u32, start: usize, alignments: &mut Vec<Alignment>| {
                if start < 400 {
                    let ce = 400.min(start + read_len);
                    alignments.push(Alignment {
                        read: idx,
                        contig: a_id,
                        read_start: 0,
                        read_end: (ce - start) as u32,
                        contig_start: start as u32,
                        contig_end: ce as u32,
                        rc: false,
                        matches: (ce - start) as u32,
                        read_len: read_len as u32,
                    });
                }
                let b_start = 400 + gap_len;
                if start + read_len > b_start {
                    let rs = b_start.saturating_sub(start);
                    alignments.push(Alignment {
                        read: idx,
                        contig: b_id,
                        read_start: rs as u32,
                        read_end: read_len as u32,
                        contig_start: (start + rs - b_start) as u32,
                        contig_end: (start + read_len - b_start) as u32,
                        rc: false,
                        matches: (read_len - rs) as u32,
                        read_len: read_len as u32,
                    });
                }
            };
            for start in (lo..=hi).step_by(13) {
                for s in [start, start + pair_off] {
                    reads.push(SeqRecord::with_uniform_quality(
                        format!("g{s}_{idx}"),
                        genome[s..s + read_len].to_vec(),
                        35,
                    ));
                    align_if_on_contig(idx, s, &mut alignments);
                    idx += 1;
                }
            }
        }
        alignments.sort_by_key(|al| (al.read, al.contig, al.contig_start));
        Fixture {
            contigs,
            scaffolds,
            alignments,
            reads,
            genome,
        }
    }

    #[test]
    fn spanning_read_closes_short_gap_exactly() {
        let f = fixture(40, 120, true);
        let team = Team::new(Topology::new(2, 2));
        let (set, stats, _) = close_gaps(
            &team,
            &f.contigs,
            &f.scaffolds,
            &f.alignments,
            &f.reads,
            &GapCloseConfig::default(),
        );
        assert_eq!(stats.total(), 1);
        assert_eq!(stats.spanned, 1, "{stats:?}");
        assert_eq!(set.sequences[0], f.genome, "closed scaffold == genome");
    }

    #[test]
    fn kmer_walk_closes_gap_longer_than_any_read() {
        // Gap 300 with 90bp reads: no single read spans flank-to-flank, so
        // the walk (or patch) must do it.
        let f = fixture(300, 90, true);
        let team = Team::new(Topology::new(2, 2));
        let (set, stats, _) = close_gaps(
            &team,
            &f.contigs,
            &f.scaffolds,
            &f.alignments,
            &f.reads,
            &GapCloseConfig::default(),
        );
        assert_eq!(stats.total(), 1);
        assert_eq!(stats.nfilled, 0, "{stats:?}");
        assert!(stats.walked + stats.patched >= 1, "{stats:?}");
        assert_eq!(set.sequences[0], f.genome);
    }

    #[test]
    fn no_reads_means_nfill_with_estimate() {
        let f = fixture(120, 90, false);
        let team = Team::new(Topology::new(1, 1));
        let (set, stats, _) = close_gaps(
            &team,
            &f.contigs,
            &f.scaffolds,
            &f.alignments,
            &f.reads,
            &GapCloseConfig::default(),
        );
        assert_eq!(stats.nfilled, 1);
        let ns = set.sequences[0].iter().filter(|&&b| b == b'N').count();
        assert_eq!(ns, 120, "N-fill must use the gap estimate");
        assert_eq!(set.sequences[0].len(), f.genome.len());
    }

    #[test]
    fn negative_gap_joins_by_overlap() {
        // Contigs that overlap by 30 bases.
        let a = lcg(300, 7);
        let b_full: Vec<u8> = a[270..].iter().chain(lcg(200, 8).iter()).copied().collect();
        let contigs =
            ContigSet::from_sequences(KmerCodec::new(21), vec![a.clone(), b_full.clone()]);
        let a_id = contigs.contigs.iter().position(|c| c.seq == a).unwrap() as u32;
        let b_id = contigs
            .contigs
            .iter()
            .position(|c| c.seq == b_full)
            .unwrap() as u32;
        let scaffolds = vec![Scaffold {
            members: vec![
                ScaffoldMember {
                    contig: a_id,
                    reversed: false,
                    gap_before: 0,
                },
                ScaffoldMember {
                    contig: b_id,
                    reversed: false,
                    gap_before: -30,
                },
            ],
        }];
        let team = Team::new(Topology::new(1, 1));
        let (set, stats, _) = close_gaps(
            &team,
            &contigs,
            &scaffolds,
            &[],
            &[],
            &GapCloseConfig::default(),
        );
        assert_eq!(stats.overlap_joined, 1);
        // Joined sequence: a + b_full[30..].
        let mut expect = a.clone();
        expect.extend_from_slice(&b_full[30..]);
        assert_eq!(set.sequences[0], expect);
    }

    #[test]
    fn dynamic_schedule_matches_static_closures() {
        // Several gap shapes, replicated into a multi-gap workload, closed
        // under both schedules at several rank counts — including 16 ranks
        // over 6 gaps (ranks > items). Output must be byte-identical.
        for (gap_len, read_len) in [(40usize, 120usize), (300, 90)] {
            let f = fixture(gap_len, read_len, true);
            let mut scaffolds = Vec::new();
            for _ in 0..6 {
                scaffolds.push(f.scaffolds[0].clone());
            }
            for (ranks, per) in [(1usize, 1usize), (4, 2), (16, 4)] {
                let team = Team::new(Topology::new(ranks, per));
                let run = |schedule: Schedule| {
                    let cfg = GapCloseConfig {
                        schedule,
                        ..Default::default()
                    };
                    let (set, _, _) =
                        close_gaps(&team, &f.contigs, &scaffolds, &f.alignments, &f.reads, &cfg);
                    set.sequences
                };
                assert_eq!(
                    run(Schedule::Static),
                    run(Schedule::Dynamic),
                    "schedules disagree at ranks={ranks} gap={gap_len}"
                );
            }
        }
    }

    #[test]
    fn round_robin_spreads_gaps_across_ranks() {
        // 8 gaps, 4 ranks: each rank closes exactly 2 with round-robin.
        let f = fixture(40, 120, true);
        let mut scaffolds = Vec::new();
        for _ in 0..8 {
            scaffolds.push(f.scaffolds[0].clone());
        }
        let team = Team::new(Topology::new(4, 2));
        let cfg = GapCloseConfig::default();
        let (_, stats, report) =
            close_gaps(&team, &f.contigs, &scaffolds, &f.alignments, &f.reads, &cfg);
        assert_eq!(stats.total(), 8);
        // Every rank did some gap work (compute ops from closures).
        let busy = report.stats.iter().filter(|s| s.compute_ops > 0).count();
        assert_eq!(busy, 4, "all ranks must close gaps");
    }
}
