//! Locating splints and spans (§4.5).
//!
//! *Splints*: one read segment aligns across the ends of two contigs —
//! direct evidence that the contigs abut (de Bruijn contigs overlap by up
//! to k-2 bases across the fork k-mer that separated them, so splint gaps
//! are typically negative).
//!
//! *Spans*: the two mates of a pair align to two different contigs; with
//! the library's insert size this bounds the gap between the contigs.
//!
//! Both detectors are embarrassingly parallel: each rank assesses 1/p of
//! the read alignments.

use crate::links::ContigEnd;
use hipmer_align::Alignment;
use hipmer_pgas::{PhaseReport, Team};

/// Evidence that two contig ends abut (from a single read).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Splint {
    /// The two contig ends, in detection order.
    pub ends: [(u32, ContigEnd); 2],
    /// Estimated separation (negative = the contigs overlap).
    pub gap: i64,
}

/// Evidence that two contig ends are within a fragment length (from a
/// read pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The two contig ends faced by the mates.
    pub ends: [(u32, ContigEnd); 2],
    /// Estimated gap between the faced ends.
    pub gap: i64,
}

/// Detection tolerances.
#[derive(Clone, Copy, Debug)]
pub struct SplintSpanConfig {
    /// How close an alignment must reach a contig end to count (bases).
    pub end_slack: u32,
    /// Full-length slack for span mates.
    pub read_slack: u32,
    /// The library insert size used for span gap estimates.
    pub insert_mean: f64,
    /// Reject spans whose implied gap is below this (repeat mis-mappings).
    pub min_gap: i64,
}

impl SplintSpanConfig {
    /// Defaults for a given insert size.
    pub fn new(insert_mean: f64) -> Self {
        SplintSpanConfig {
            end_slack: 5,
            read_slack: 3,
            insert_mean,
            min_gap: -200,
        }
    }
}

/// Which contig end an alignment reaches, looking along the read.
///
/// `outgoing` = the read *leaves* the contig after this alignment (the
/// alignment must reach the end the read runs off); otherwise the read
/// *enters* the contig here.
fn touched_end(a: &Alignment, contig_len: usize, outgoing: bool, slack: u32) -> Option<ContigEnd> {
    let at_right = a.contig_end + slack >= contig_len as u32;
    let at_left = a.contig_start <= slack;
    let facing_right = a.rc != outgoing; // outgoing && fwd -> right; incoming && fwd -> left
    if facing_right {
        // Outgoing fwd / incoming rc: the junction is at the contig's right.
        if at_right {
            Some(ContigEnd::Right)
        } else {
            None
        }
    } else if at_left {
        Some(ContigEnd::Left)
    } else {
        None
    }
}

/// Scan all alignments for splints and spans.
///
/// `alignments` must be sorted by read; `contig_lens[c]` gives contig
/// lengths. Returns splints, spans, and the phase report.
pub fn locate_splints_and_spans(
    team: &Team,
    alignments: &[Alignment],
    contig_lens: &[usize],
    cfg: &SplintSpanConfig,
) -> (Vec<Splint>, Vec<Span>, PhaseReport) {
    // Pair-range index (pairs = reads 2i, 2i+1).
    let mut pair_ranges: Vec<(usize, usize)> = Vec::new();
    {
        let mut i = 0usize;
        while i < alignments.len() {
            let pair = alignments[i].read / 2;
            let j = alignments[i..]
                .iter()
                .position(|a| a.read / 2 != pair)
                .map(|off| i + off)
                .unwrap_or(alignments.len());
            pair_ranges.push((i, j));
            i = j;
        }
    }

    let (results, stats) = team.run_named("scaffold/splints-spans", |ctx| {
        let mut splints = Vec::new();
        let mut spans = Vec::new();
        for &(start, end) in &pair_ranges[ctx.chunk(pair_ranges.len())] {
            let group = &alignments[start..end];
            ctx.stats.compute((end - start) as u64);

            // --- Splints: within each read, ordered alignment pairs on
            // different contigs.
            let pair = group[0].read / 2;
            for mate in [2 * pair, 2 * pair + 1] {
                let of_read: Vec<&Alignment> = group.iter().filter(|a| a.read == mate).collect();
                for a in &of_read {
                    for b in &of_read {
                        if a.contig == b.contig || a.read_end > b.read_start + 30 {
                            continue;
                        }
                        if a.read_start >= b.read_start {
                            continue;
                        }
                        let (Some(ea), Some(eb)) = (
                            touched_end(a, contig_lens[a.contig as usize], true, cfg.end_slack),
                            touched_end(b, contig_lens[b.contig as usize], false, cfg.end_slack),
                        ) else {
                            continue;
                        };
                        splints.push(Splint {
                            ends: [(a.contig, ea), (b.contig, eb)],
                            gap: b.read_start as i64 - a.read_end as i64,
                        });
                    }
                }
            }

            // --- Spans: unique full-length mates on different contigs.
            let (r1, r2) = (2 * pair, 2 * pair + 1);
            let m1: Vec<&Alignment> = group
                .iter()
                .filter(|a| a.read == r1 && a.is_full_length(cfg.read_slack))
                .collect();
            let m2: Vec<&Alignment> = group
                .iter()
                .filter(|a| a.read == r2 && a.is_full_length(cfg.read_slack))
                .collect();
            if let (&[a1], &[a2]) = (&m1[..], &m2[..]) {
                if a1.contig != a2.contig {
                    // For either mate, the rest of the fragment lies in the
                    // read's *forward* direction (mate 2 is sequenced
                    // pointing back at mate 1), so the faced contig end
                    // depends only on the alignment strand.
                    let geom = |a: &Alignment| -> (ContigEnd, i64) {
                        let increasing = !a.rc;
                        if increasing {
                            (
                                ContigEnd::Right,
                                contig_lens[a.contig as usize] as i64 - a.contig_start as i64,
                            )
                        } else {
                            (ContigEnd::Left, a.contig_end as i64)
                        }
                    };
                    let (e1, d1) = geom(a1);
                    let (e2, d2) = geom(a2);
                    let gap = cfg.insert_mean as i64 - d1 - d2;
                    if gap >= cfg.min_gap {
                        spans.push(Span {
                            ends: [(a1.contig, e1), (a2.contig, e2)],
                            gap,
                        });
                    }
                }
            }
        }
        (splints, spans)
    });

    let mut splints = Vec::new();
    let mut spans = Vec::new();
    for (sp, sn) in results {
        splints.extend(sp);
        spans.extend(sn);
    }
    (
        splints,
        spans,
        PhaseReport::new("scaffold/splints-spans", *team.topo(), stats),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_align::{align_reads, AlignConfig};
    use hipmer_contig::ContigSet;
    use hipmer_dna::{revcomp, KmerCodec};
    use hipmer_pgas::Topology;
    use hipmer_seqio::SeqRecord;

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(37);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    /// Genome split into two known contigs with a junction read.
    #[test]
    fn junction_read_produces_splint() {
        let g1 = lcg(300, 1);
        let g2 = lcg(300, 2);
        let contigs = ContigSet::from_sequences(KmerCodec::new(21), vec![g1.clone(), g2.clone()]);
        // Contig ids: sorted by length then sequence; equal lengths -> by
        // sequence. Find which is which.
        let id_of = |seq: &Vec<u8>| -> u32 {
            contigs
                .contigs
                .iter()
                .find(|c| {
                    c.seq == hipmer_dna::canonical_seq(seq.clone())
                        || c.seq == *seq
                        || c.seq == revcomp(seq)
                })
                .unwrap()
                .id as u32
        };
        let (id1, id2) = (id_of(&g1), id_of(&g2));

        let mut junction = g1[250..].to_vec();
        junction.extend_from_slice(&g2[..50]);
        let reads = vec![
            SeqRecord::with_uniform_quality("j/1", junction, 35),
            SeqRecord::with_uniform_quality("j/2", lcg(100, 999), 35), // noise mate
        ];
        let team = Team::new(Topology::new(2, 2));
        let (alns, _) = align_reads(&team, &contigs, &reads, &AlignConfig::new(15));
        let lens: Vec<usize> = contigs.contigs.iter().map(|c| c.len()).collect();
        let (splints, _, _) =
            locate_splints_and_spans(&team, &alns, &lens, &SplintSpanConfig::new(400.0));
        assert_eq!(splints.len(), 1, "{splints:?}");
        let s = &splints[0];
        let hit: std::collections::HashSet<u32> = s.ends.iter().map(|(c, _)| *c).collect();
        assert!(hit.contains(&id1) && hit.contains(&id2));
        assert_eq!(s.gap, 0, "abutting contigs, zero gap in read coords");
    }

    #[test]
    fn mate_pair_across_contigs_produces_span_with_gap() {
        // Genome = A (400) + gap 100 + B (400); fragment length 400
        // straddles the gap.
        let a = lcg(400, 5);
        let gap = lcg(100, 6);
        let b = lcg(400, 7);
        let mut genome = a.clone();
        genome.extend_from_slice(&gap);
        genome.extend_from_slice(&b);

        let contigs = ContigSet::from_sequences(KmerCodec::new(21), vec![a.clone(), b.clone()]);
        // One pair: r1 at genome[250..350] (inside A), r2 rc at
        // genome[550..650] (inside B). Fragment = genome[250..650], 400bp.
        let reads = vec![
            SeqRecord::with_uniform_quality("p/1", genome[250..350].to_vec(), 35),
            SeqRecord::with_uniform_quality("p/2", revcomp(&genome[550..650]), 35),
        ];
        let team = Team::new(Topology::new(1, 1));
        let (alns, _) = align_reads(&team, &contigs, &reads, &AlignConfig::new(15));
        assert_eq!(alns.len(), 2, "{alns:?}");
        let lens: Vec<usize> = contigs.contigs.iter().map(|c| c.len()).collect();
        let (_, spans, _) =
            locate_splints_and_spans(&team, &alns, &lens, &SplintSpanConfig::new(400.0));
        assert_eq!(spans.len(), 1, "{spans:?}");
        let s = &spans[0];
        // d1 = 400-250 = 150 (A right end), d2 = 650-500... B occupies
        // genome[500..900]; r2 on B at [50..150], contig_end=150 -> d2=150.
        // gap = 400 - 150 - 150 = 100. Exactly the planted gap.
        assert_eq!(s.gap, 100);
        // A faced via its right end, B via its left end (modulo the
        // canonical orientation of the stored contigs).
        let ends: std::collections::HashMap<u32, ContigEnd> = s.ends.iter().copied().collect();
        assert_eq!(ends.len(), 2);
    }

    #[test]
    fn same_contig_pairs_produce_nothing() {
        let g = lcg(600, 9);
        let contigs = ContigSet::from_sequences(KmerCodec::new(21), vec![g.clone()]);
        let reads = vec![
            SeqRecord::with_uniform_quality("p/1", g[100..200].to_vec(), 35),
            SeqRecord::with_uniform_quality("p/2", revcomp(&g[400..500]), 35),
        ];
        let team = Team::new(Topology::new(1, 1));
        let (alns, _) = align_reads(&team, &contigs, &reads, &AlignConfig::new(15));
        let lens = vec![g.len()];
        let (splints, spans, _) =
            locate_splints_and_spans(&team, &alns, &lens, &SplintSpanConfig::new(400.0));
        assert!(splints.is_empty());
        assert!(spans.is_empty());
    }
}
