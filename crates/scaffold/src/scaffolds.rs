//! Scaffold data types.

use hipmer_contig::ContigSet;

/// One oriented contig inside a scaffold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaffoldMember {
    /// Contig id (into the scaffolding contig set).
    pub contig: u32,
    /// `true` if the contig participates reverse-complemented.
    pub reversed: bool,
    /// Estimated gap in bases between the previous member and this one
    /// (unused for the first member; negative = overlap/splint).
    pub gap_before: i64,
}

/// An ordered, oriented chain of contigs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Scaffold {
    /// Members in left-to-right order.
    pub members: Vec<ScaffoldMember>,
}

impl Scaffold {
    /// Number of member contigs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the scaffold has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of internal gaps.
    pub fn gaps(&self) -> usize {
        self.members.len().saturating_sub(1)
    }

    /// Span in bases over `contigs`, counting positive gaps.
    pub fn span(&self, contigs: &ContigSet) -> usize {
        let mut total = 0i64;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                total += m.gap_before.max(0);
            }
            total += contigs.contigs[m.contig as usize].len() as i64;
        }
        total.max(0) as usize
    }
}

/// The scaffolding result: scaffolds plus their final sequences (after gap
/// closing).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScaffoldSet {
    /// The contig chains.
    pub scaffolds: Vec<Scaffold>,
    /// Final sequence per scaffold (gaps closed or N-filled), same order.
    pub sequences: Vec<Vec<u8>>,
}

impl ScaffoldSet {
    /// Number of scaffolds.
    pub fn len(&self) -> usize {
        self.scaffolds.len()
    }

    /// Whether there are no scaffolds.
    pub fn is_empty(&self) -> bool {
        self.scaffolds.is_empty()
    }

    /// Total bases over all final sequences.
    pub fn total_bases(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Scaffold N50 over the final sequences.
    pub fn n50(&self) -> usize {
        let mut lens: Vec<usize> = self.sequences.iter().map(Vec::len).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = lens.iter().sum();
        let mut acc = 0;
        for l in lens {
            acc += l;
            if 2 * acc >= total {
                return l;
            }
        }
        0
    }

    /// The longest final sequence.
    pub fn max_len(&self) -> usize {
        self.sequences.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_dna::KmerCodec;

    fn contigs(lens: &[usize]) -> ContigSet {
        ContigSet::from_sequences(
            KmerCodec::new(21),
            lens.iter().map(|&l| vec![b'A'; l]).collect(),
        )
    }

    #[test]
    fn span_counts_gaps_and_lengths() {
        let cs = contigs(&[100, 50]);
        let s = Scaffold {
            members: vec![
                ScaffoldMember {
                    contig: 0,
                    reversed: false,
                    gap_before: 0,
                },
                ScaffoldMember {
                    contig: 1,
                    reversed: true,
                    gap_before: 25,
                },
            ],
        };
        assert_eq!(s.span(&cs), 175);
        assert_eq!(s.gaps(), 1);
        // Negative gap (overlap) does not shrink the span below the sum.
        let mut s2 = s.clone();
        s2.members[1].gap_before = -10;
        assert_eq!(s2.span(&cs), 150);
    }

    #[test]
    fn scaffold_set_n50() {
        let set = ScaffoldSet {
            scaffolds: vec![Scaffold::default(); 3],
            sequences: vec![vec![b'A'; 50], vec![b'A'; 30], vec![b'A'; 10]],
        };
        assert_eq!(set.n50(), 50);
        assert_eq!(set.total_bases(), 90);
        assert_eq!(set.max_len(), 50);
    }
}
