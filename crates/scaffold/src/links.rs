//! Contig link generation (§4.6).
//!
//! Splints and spans are individually noisy; links aggregate them per
//! contig-end pair in a distributed hash table (keys: contig pairs,
//! values: splint/span tallies — built with aggregating stores), and a
//! link survives only with sufficient supporting evidence. Each rank then
//! assesses its local buckets.

use crate::splints::{Span, Splint};
use hipmer_pgas::{AggregatingStores, DistHashMap, PhaseReport, Team};

/// One end of a contig.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ContigEnd {
    /// The `seq[0]` end.
    Left,
    /// The `seq[len-1]` end.
    Right,
}

impl ContigEnd {
    /// The opposite end.
    pub fn other(self) -> ContigEnd {
        match self {
            ContigEnd::Left => ContigEnd::Right,
            ContigEnd::Right => ContigEnd::Left,
        }
    }
}

/// Normalized key for an unordered pair of contig ends.
pub type EndKey = ((u32, ContigEnd), (u32, ContigEnd));

/// Normalize an end pair into a canonical key order.
pub fn end_key(a: (u32, ContigEnd), b: (u32, ContigEnd)) -> EndKey {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// What kind of evidence established a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Supported by reads aligning across both ends (negative gaps).
    Splint,
    /// Supported by mate pairs.
    Span,
}

/// Aggregated tallies for one end pair.
#[derive(Clone, Copy, Debug, Default)]
struct LinkAgg {
    splint_count: u32,
    splint_gap_sum: i64,
    span_count: u32,
    span_gap_sum: i64,
}

impl LinkAgg {
    fn merge(&mut self, o: LinkAgg) {
        self.splint_count += o.splint_count;
        self.splint_gap_sum += o.splint_gap_sum;
        self.span_count += o.span_count;
        self.span_gap_sum += o.span_gap_sum;
    }
}

/// A surviving link between two contig ends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// The normalized end pair.
    pub key: EndKey,
    /// Mean estimated gap (negative = overlap).
    pub gap: i64,
    /// Number of supporting observations.
    pub support: u32,
    /// Dominant evidence kind (splints outrank spans — they are direct).
    pub kind: LinkKind,
}

/// Evidence thresholds.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Minimum splint observations for a splint link.
    pub min_splints: u32,
    /// Minimum span observations for a span link.
    pub min_spans: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            min_splints: 2,
            min_spans: 2,
        }
    }
}

/// Aggregate splints and spans into links.
pub fn generate_links(
    team: &Team,
    splints: &[Splint],
    spans: &[Span],
    cfg: &LinkConfig,
) -> (Vec<Link>, PhaseReport) {
    let table: DistHashMap<EndKey, LinkAgg> = DistHashMap::new(*team.topo());

    let (_, mut stats) = team.run_named("scaffold/links/aggregate", |ctx| {
        let mut agg = AggregatingStores::new(&table, |a: &mut LinkAgg, b| a.merge(b));
        for s in &splints[ctx.chunk(splints.len())] {
            ctx.stats.compute(1);
            agg.push(
                ctx,
                end_key(s.ends[0], s.ends[1]),
                LinkAgg {
                    splint_count: 1,
                    splint_gap_sum: s.gap,
                    ..LinkAgg::default()
                },
            );
        }
        for s in &spans[ctx.chunk(spans.len())] {
            ctx.stats.compute(1);
            agg.push(
                ctx,
                end_key(s.ends[0], s.ends[1]),
                LinkAgg {
                    span_count: 1,
                    span_gap_sum: s.gap,
                    ..LinkAgg::default()
                },
            );
        }
        agg.finish(ctx);
    });
    table.drain_service_into(&mut stats);

    // Assess local buckets.
    let (link_lists, stats_b) = team.run_named("scaffold/links/assess", |ctx| {
        table.fold_local(ctx, Vec::<Link>::new(), |mut out, key, agg| {
            if agg.splint_count >= cfg.min_splints {
                out.push(Link {
                    key: *key,
                    gap: agg.splint_gap_sum / agg.splint_count as i64,
                    support: agg.splint_count,
                    kind: LinkKind::Splint,
                });
            } else if agg.span_count >= cfg.min_spans {
                out.push(Link {
                    key: *key,
                    gap: agg.span_gap_sum / agg.span_count as i64,
                    support: agg.span_count,
                    kind: LinkKind::Span,
                });
            }
            out
        })
    });
    for (a, b) in stats.iter_mut().zip(&stats_b) {
        a.merge(b);
    }
    let mut links: Vec<Link> = link_lists.into_iter().flatten().collect();
    links.sort_by_key(|l| l.key);
    (
        links,
        PhaseReport::new("scaffold/links", *team.topo(), stats),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_pgas::Topology;

    fn splint(c1: u32, e1: ContigEnd, c2: u32, e2: ContigEnd, gap: i64) -> Splint {
        Splint {
            ends: [(c1, e1), (c2, e2)],
            gap,
        }
    }

    fn span(c1: u32, e1: ContigEnd, c2: u32, e2: ContigEnd, gap: i64) -> Span {
        Span {
            ends: [(c1, e1), (c2, e2)],
            gap,
        }
    }

    #[test]
    fn links_require_min_support() {
        let team = Team::new(Topology::new(4, 2));
        let splints = vec![
            splint(0, ContigEnd::Right, 1, ContigEnd::Left, -19),
            splint(1, ContigEnd::Left, 0, ContigEnd::Right, -19), // same, reversed order
            splint(2, ContigEnd::Right, 3, ContigEnd::Left, -19), // only once
        ];
        let (links, _) = generate_links(&team, &splints, &[], &LinkConfig::default());
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].support, 2);
        assert_eq!(links[0].kind, LinkKind::Splint);
        assert_eq!(links[0].gap, -19);
        assert_eq!(
            links[0].key,
            end_key((0, ContigEnd::Right), (1, ContigEnd::Left))
        );
    }

    #[test]
    fn span_links_average_gaps() {
        let team = Team::new(Topology::new(2, 2));
        let spans = vec![
            span(5, ContigEnd::Right, 6, ContigEnd::Left, 90),
            span(5, ContigEnd::Right, 6, ContigEnd::Left, 110),
            span(5, ContigEnd::Right, 6, ContigEnd::Left, 100),
        ];
        let (links, _) = generate_links(&team, &[], &spans, &LinkConfig::default());
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].gap, 100);
        assert_eq!(links[0].support, 3);
        assert_eq!(links[0].kind, LinkKind::Span);
    }

    #[test]
    fn splints_outrank_spans_for_same_pair() {
        let team = Team::new(Topology::new(2, 2));
        let splints = vec![
            splint(0, ContigEnd::Right, 1, ContigEnd::Left, -19),
            splint(0, ContigEnd::Right, 1, ContigEnd::Left, -19),
        ];
        let spans = vec![
            span(0, ContigEnd::Right, 1, ContigEnd::Left, 40),
            span(0, ContigEnd::Right, 1, ContigEnd::Left, 60),
        ];
        let (links, _) = generate_links(&team, &splints, &spans, &LinkConfig::default());
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].kind, LinkKind::Splint);
        assert_eq!(links[0].gap, -19);
    }

    #[test]
    fn deterministic_across_rank_counts() {
        let splints: Vec<Splint> = (0..50)
            .flat_map(|i| vec![splint(i, ContigEnd::Right, i + 1, ContigEnd::Left, -10); 3])
            .collect();
        let run = |ranks| {
            let team = Team::new(Topology::new(ranks, 4));
            generate_links(&team, &splints, &[], &LinkConfig::default()).0
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn end_key_normalizes() {
        let a = (3u32, ContigEnd::Left);
        let b = (1u32, ContigEnd::Right);
        assert_eq!(end_key(a, b), end_key(b, a));
        assert_eq!(ContigEnd::Left.other(), ContigEnd::Right);
    }
}
