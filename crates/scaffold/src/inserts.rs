//! Insert-size estimation (§4.4).
//!
//! Pairs whose both mates align full-length to one common contig reveal
//! the library's fragment-size distribution. Each rank histograms its
//! sampled pairs locally; the histograms are merged into a global one and
//! the mean/σ are read off it.

use hipmer_align::Alignment;
use hipmer_pgas::{PhaseReport, Team};
use hipmer_sketch::CountHistogram;

/// Largest insert tracked exactly (the paper's biggest library is
/// 4.2 kbp; 20 kbp leaves generous headroom while keeping the per-rank
/// histogram reduction message small).
const MAX_INSERT: usize = 20_000;

/// Estimated library geometry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InsertEstimate {
    /// Mean fragment length.
    pub mean: f64,
    /// Standard deviation.
    pub sd: f64,
    /// Pairs that contributed.
    pub pairs: u64,
}

/// Estimate the insert size from read-to-contig alignments.
///
/// `alignments` must be sorted by read (as [`hipmer_align::align_reads`]
/// returns them); reads `2i`/`2i+1` form pair `i`. Full-length is
/// checked with `slack` bases of tolerance at the read tips.
pub fn estimate_insert_size(
    team: &Team,
    alignments: &[Alignment],
    slack: u32,
) -> (Option<InsertEstimate>, PhaseReport) {
    // Index alignment ranges per read pair: group boundaries by pair id.
    // (Cheap scan; the heavy part — histogramming — is parallel below.)
    let mut pair_ranges: Vec<(usize, usize)> = Vec::new(); // (start, end) into alignments per pair
    {
        let mut i = 0usize;
        while i < alignments.len() {
            let pair = alignments[i].read / 2;
            let j = alignments[i..]
                .iter()
                .position(|a| a.read / 2 != pair)
                .map(|off| i + off)
                .unwrap_or(alignments.len());
            pair_ranges.push((i, j));
            i = j;
        }
    }

    let (histograms, stats) = team.run_named("scaffold/insert-size", |ctx| {
        let mut h = CountHistogram::new(MAX_INSERT);
        for &(start, end) in &pair_ranges[ctx.chunk(pair_ranges.len())] {
            ctx.stats.compute((end - start) as u64);
            let group = &alignments[start..end];
            let pair = group[0].read / 2;
            let (r1, r2) = (2 * pair, 2 * pair + 1);
            // Full-length alignments of each mate.
            let m1: Vec<&Alignment> = group
                .iter()
                .filter(|a| a.read == r1 && a.is_full_length(slack))
                .collect();
            let m2: Vec<&Alignment> = group
                .iter()
                .filter(|a| a.read == r2 && a.is_full_length(slack))
                .collect();
            // Use the pair only if each mate maps uniquely and to a common
            // contig, with opposite orientations (FR).
            if let (&[a1], &[a2]) = (&m1[..], &m2[..]) {
                if a1.contig == a2.contig && a1.rc != a2.rc {
                    let lo = a1.contig_start.min(a2.contig_start) as u64;
                    let hi = a1.contig_end.max(a2.contig_end) as u64;
                    h.record(hi - lo);
                }
            }
        }
        // Histogram reduction: one message of histogram size to the root.
        ctx.access(0, MAX_INSERT as u64 * 8);
        h
    });

    let mut merged = CountHistogram::new(MAX_INSERT);
    for h in &histograms {
        merged.merge(h);
    }
    let estimate = if merged.count() == 0 {
        None
    } else {
        Some(InsertEstimate {
            mean: merged.mean().unwrap(),
            sd: merged.stddev().unwrap_or(0.0),
            pairs: merged.count(),
        })
    };
    (
        estimate,
        PhaseReport::new("scaffold/insert-size", *team.topo(), stats),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_align::{align_reads, AlignConfig};
    use hipmer_contig::ContigSet;
    use hipmer_dna::{revcomp, KmerCodec};
    use hipmer_pgas::Topology;
    use hipmer_seqio::SeqRecord;

    fn lcg(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(31);
                b"ACGT"[(x >> 60) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn recovers_known_insert_size() {
        let genome = lcg(5000, 3);
        let contigs = ContigSet::from_sequences(KmerCodec::new(21), vec![genome.clone()]);
        // Pairs with fixed fragment 500, read length 100.
        let mut reads = Vec::new();
        for (i, start) in (0..4000).step_by(80).enumerate() {
            let frag = &genome[start..start + 500];
            reads.push(SeqRecord::with_uniform_quality(
                format!("p{i}/1"),
                frag[..100].to_vec(),
                35,
            ));
            reads.push(SeqRecord::with_uniform_quality(
                format!("p{i}/2"),
                revcomp(&frag[400..]),
                35,
            ));
        }
        let team = Team::new(Topology::new(4, 2));
        let (alns, _) = align_reads(&team, &contigs, &reads, &AlignConfig::new(15));
        let (est, _) = estimate_insert_size(&team, &alns, 2);
        let est = est.expect("pairs found");
        assert!(est.pairs > 30, "pairs {}", est.pairs);
        assert!(
            (est.mean - 500.0).abs() < 5.0,
            "mean {} should be ~500",
            est.mean
        );
        assert!(est.sd < 10.0, "sd {}", est.sd);
    }

    #[test]
    fn no_common_contig_pairs_yields_none() {
        let team = Team::new(Topology::new(2, 2));
        let (est, _) = estimate_insert_size(&team, &[], 2);
        assert!(est.is_none());
    }
}
