//! Scaffolding: every module of §4 of the paper.
//!
//! The scaffolder consumes the contig set and the original reads and
//! produces scaffolds — ordered, oriented chains of contigs with their
//! gaps closed where possible:
//!
//! | module | paper § | this crate |
//! |---|---|---|
//! | contig depths & termination states | 4.1 | [`depths`] |
//! | bubble detection + bubble–contig graph | 4.2 | [`bubbles`] |
//! | read-to-contig alignment (merAligner) | 4.3 | `hipmer-align` |
//! | insert-size estimation | 4.4 | [`inserts`] |
//! | splint & span location | 4.5 | [`splints`] |
//! | contig link generation | 4.6 | [`links`] |
//! | ordering & orientation (ties) | 4.7 | [`ties`] |
//! | gap closing | 4.8 | [`gapclose`] |
//!
//! [`pipeline::scaffold_pipeline`] chains them end-to-end and returns the
//! final scaffolds plus one [`hipmer_pgas::PhaseReport`] per module, which
//! is what the Fig. 7 bench decomposes into "merAligner", "gap closing",
//! and "rest scaffolding".

pub mod bubbles;
pub mod depths;
pub mod gapclose;
pub mod inserts;
pub mod links;
pub mod pipeline;
pub mod scaffolds;
pub mod splints;
pub mod ties;

pub use bubbles::merge_bubbles;
pub use depths::{compute_depths, ContigEndInfo, TerminationState};
pub use gapclose::{close_gaps, GapCloseConfig, GapCloseStats};
pub use inserts::estimate_insert_size;
pub use links::{generate_links, ContigEnd, EndKey, Link, LinkKind};
pub use pipeline::{
    prepare_contigs, scaffold_pipeline, scaffold_rounds, ScaffoldConfig, ScaffoldOutput,
};
pub use scaffolds::{Scaffold, ScaffoldMember, ScaffoldSet};
pub use splints::{locate_splints_and_spans, Span, Splint};
pub use ties::order_and_orient;
