//! A SeqDB-like compressed binary read format (§3.3 context).
//!
//! HipMer's earlier pipeline read SeqDB (an HDF5-based compressed store,
//! Howison \[16\]); the parallel FASTQ reader exists so users don't have to
//! convert, and the paper reports it reaches "close to the I/O bandwidth
//! achieved by reading SeqDB (up to compression factor differences)". To
//! make that comparison runnable, this module provides a simple
//! self-contained equivalent: 2-bit packed bases (with an N-position
//! escape list), run-length encoded qualities, and a block index that
//! lets every rank seek straight to its share — the property that made
//! SeqDB trivially parallel to read.
//!
//! Layout:
//! ```text
//! [8B magic "HIPSEQDB"] [u64 record-count] [u64 index-offset]
//! record*  : varint id_len, id bytes, varint seq_len,
//!            varint n_count, varint n_positions (delta)...,
//!            packed 2-bit bases (ceil(seq_len/4) bytes; N slots are 0),
//!            quality RLE: varint run-count, (varint len, u8 qual)*
//! index    : u64 block-count, (u64 first-record, u64 byte-offset)*
//! ```

use crate::record::SeqRecord;
use hipmer_dna::encode_base;
use hipmer_pgas::{CommStats, Team};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HIPSEQDB";
/// Records per index block.
const BLOCK: u64 = 1024;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "varint"))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
    }
}

/// Serialize one record.
fn encode_record(out: &mut Vec<u8>, r: &SeqRecord) -> io::Result<()> {
    write_varint(out, r.id.len() as u64)?;
    out.extend_from_slice(r.id.as_bytes());
    write_varint(out, r.seq.len() as u64)?;
    // N positions, delta encoded.
    let n_positions: Vec<usize> = r
        .seq
        .iter()
        .enumerate()
        .filter(|(_, &b)| encode_base(b).is_none())
        .map(|(i, _)| i)
        .collect();
    write_varint(out, n_positions.len() as u64)?;
    let mut prev = 0usize;
    for &p in &n_positions {
        write_varint(out, (p - prev) as u64)?;
        prev = p;
    }
    // 2-bit packed bases.
    let mut byte = 0u8;
    for (i, &b) in r.seq.iter().enumerate() {
        let code = encode_base(b).unwrap_or(0);
        byte |= code << ((i % 4) * 2);
        if i % 4 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !r.seq.len().is_multiple_of(4) {
        out.push(byte);
    }
    // Quality RLE.
    let qual_default = vec![b'I'; r.seq.len()];
    let qual = r.qual.as_deref().unwrap_or(&qual_default);
    let mut runs: Vec<(u64, u8)> = Vec::new();
    for &q in qual {
        match runs.last_mut() {
            Some((len, v)) if *v == q => *len += 1,
            _ => runs.push((1, q)),
        }
    }
    write_varint(out, runs.len() as u64)?;
    for (len, q) in runs {
        write_varint(out, len)?;
        out.push(q);
    }
    Ok(())
}

/// Parse one record starting at `pos`; advances `pos`.
fn decode_record(buf: &[u8], pos: &mut usize) -> io::Result<SeqRecord> {
    let id_len = read_varint(buf, pos)? as usize;
    let id = String::from_utf8_lossy(
        buf.get(*pos..*pos + id_len)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "id"))?,
    )
    .into_owned();
    *pos += id_len;
    let seq_len = read_varint(buf, pos)? as usize;
    let n_count = read_varint(buf, pos)? as usize;
    let mut n_positions = Vec::with_capacity(n_count);
    let mut acc = 0usize;
    for i in 0..n_count {
        let d = read_varint(buf, pos)? as usize;
        acc = if i == 0 { d } else { acc + d };
        n_positions.push(acc);
    }
    let packed_len = seq_len.div_ceil(4);
    let packed = buf
        .get(*pos..*pos + packed_len)
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "bases"))?;
    *pos += packed_len;
    let mut seq = Vec::with_capacity(seq_len);
    for i in 0..seq_len {
        let code = (packed[i / 4] >> ((i % 4) * 2)) & 0b11;
        seq.push(hipmer_dna::decode_base(code));
    }
    for &p in &n_positions {
        seq[p] = b'N';
    }
    let run_count = read_varint(buf, pos)? as usize;
    let mut qual = Vec::with_capacity(seq_len);
    for _ in 0..run_count {
        let len = read_varint(buf, pos)? as usize;
        let q = *buf
            .get(*pos)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "qual"))?;
        *pos += 1;
        qual.extend(std::iter::repeat_n(q, len));
    }
    if qual.len() != seq_len {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "qual length"));
    }
    Ok(SeqRecord {
        id,
        seq,
        qual: Some(qual),
    })
}

/// Write a SeqDB file.
pub fn write_seqdb(path: &Path, records: &[SeqRecord]) -> io::Result<()> {
    let mut body: Vec<u8> = Vec::new();
    let mut index: Vec<(u64, u64)> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        if (i as u64).is_multiple_of(BLOCK) {
            index.push((i as u64, body.len() as u64));
        }
        encode_record(&mut body, r)?;
    }
    let mut out: Vec<u8> = Vec::with_capacity(body.len() + 24 + index.len() * 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    let index_offset = 24 + body.len() as u64;
    out.extend_from_slice(&index_offset.to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&(index.len() as u64).to_le_bytes());
    for (first, off) in index {
        out.extend_from_slice(&first.to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
    }
    std::fs::write(path, out)
}

/// Read a SeqDB file in parallel: every rank seeks to its block range via
/// the index (no boundary fix-up needed — that is SeqDB's advantage) and
/// decodes its records. Returns per-rank record vectors and I/O counters.
pub fn read_seqdb_parallel(
    team: &Team,
    path: &Path,
) -> io::Result<(Vec<Vec<SeqRecord>>, Vec<CommStats>)> {
    // Read the header + index once (tiny; the paper's reader samples
    // similarly).
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; 24];
    f.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let n_records = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let index_offset = u64::from_le_bytes(header[16..24].try_into().unwrap());
    f.seek(SeekFrom::Start(index_offset))?;
    let mut count_buf = [0u8; 8];
    f.read_exact(&mut count_buf)?;
    let n_blocks = u64::from_le_bytes(count_buf) as usize;
    let mut index = Vec::with_capacity(n_blocks);
    let mut entry = [0u8; 16];
    for _ in 0..n_blocks {
        f.read_exact(&mut entry)?;
        index.push((
            u64::from_le_bytes(entry[..8].try_into().unwrap()),
            u64::from_le_bytes(entry[8..].try_into().unwrap()),
        ));
    }
    drop(f);

    let (results, stats) = team.run_named("io/seqdb", |ctx| -> io::Result<Vec<SeqRecord>> {
        // Block range for this rank.
        let blocks = ctx.chunk(index.len());
        if blocks.is_empty() {
            return Ok(Vec::new());
        }
        let first_record = index[blocks.start].0;
        let end_record = if blocks.end < index.len() {
            index[blocks.end].0
        } else {
            n_records
        };
        let byte_start = 24 + index[blocks.start].1;
        let byte_end = if blocks.end < index.len() {
            24 + index[blocks.end].1
        } else {
            index_offset
        };
        let mut f = std::fs::File::open(path)?;
        f.seek(SeekFrom::Start(byte_start))?;
        let mut buf = vec![0u8; (byte_end - byte_start) as usize];
        f.read_exact(&mut buf)?;
        ctx.stats.io_read_bytes += buf.len() as u64 + 24;
        let mut pos = 0usize;
        let mut out = Vec::with_capacity((end_record - first_record) as usize);
        for _ in first_record..end_record {
            out.push(decode_record(&buf, &mut pos)?);
        }
        Ok(out)
    });
    let mut per_rank = Vec::with_capacity(results.len());
    for r in results {
        per_rank.push(r?);
    }
    Ok((per_rank, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipmer_pgas::Topology;

    fn records(n: usize) -> Vec<SeqRecord> {
        (0..n)
            .map(|i| {
                let len = 60 + (i * 17) % 70;
                let mut seq: Vec<u8> = (0..len).map(|j| b"ACGT"[(i + j) % 4]).collect();
                if i % 5 == 0 && len > 10 {
                    seq[3] = b'N';
                    seq[len - 2] = b'N';
                }
                let mut r = SeqRecord::with_uniform_quality(format!("rec{i} lib=x"), seq, 35);
                if i % 3 == 0 {
                    r.qual.as_mut().unwrap()[0] = 33 + 2; // non-uniform run
                }
                r
            })
            .collect()
    }

    fn tempfile(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hipmer-seqdb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.seqdb"))
    }

    #[test]
    fn roundtrip_with_ns_and_quality_runs() {
        let recs = records(300);
        let path = tempfile("roundtrip");
        write_seqdb(&path, &recs).unwrap();
        for ranks in [1usize, 3, 8] {
            let team = Team::new(Topology::new(ranks, 4));
            let (per_rank, _) = read_seqdb_parallel(&team, &path).unwrap();
            let got: Vec<SeqRecord> = per_rank.into_iter().flatten().collect();
            assert_eq!(got, recs, "ranks={ranks}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compression_beats_fastq() {
        let recs = records(2000);
        let path = tempfile("size");
        write_seqdb(&path, &recs).unwrap();
        let seqdb_bytes = std::fs::metadata(&path).unwrap().len();
        let mut fastq = Vec::new();
        crate::fastq::write_fastq(&mut fastq, &recs).unwrap();
        assert!(
            (seqdb_bytes as f64) < 0.5 * fastq.len() as f64,
            "seqdb {} vs fastq {}",
            seqdb_bytes,
            fastq.len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_roundtrips() {
        let path = tempfile("empty");
        write_seqdb(&path, &[]).unwrap();
        let team = Team::new(Topology::new(4, 2));
        let (per_rank, _) = read_seqdb_parallel(&team, &path).unwrap();
        assert!(per_rank.into_iter().flatten().next().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tempfile("bad");
        std::fs::write(&path, b"NOTSEQDBxxxxxxxxxxxxxxxx").unwrap();
        let team = Team::new(Topology::new(1, 1));
        assert!(read_seqdb_parallel(&team, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
