//! Sequence I/O: FASTQ/FASTA records, parsers and writers, and the
//! parallel block FASTQ reader of §3.3.
//!
//! The paper replaced its earlier SeqDB/HDF5 input path with a parallel
//! FASTQ reader so end users would not have to convert their files; the
//! reader samples the file to estimate record lengths, splits it into
//! per-rank byte ranges, fixes each range up to the next record boundary,
//! and reads with large buffers ("close to the I/O bandwidth achieved by
//! reading SeqDB"). [`block::read_fastq_parallel`] reproduces exactly that
//! scheme against ordinary files, tallying the bytes each rank moved so the
//! cost model can price I/O with aggregate-bandwidth saturation.

pub mod block;
pub mod fasta;
pub mod fastq;
pub mod record;
pub mod scan;
pub mod seqdb;

pub use block::{read_fastq_parallel, FastqSplit};
pub use fasta::{parse_fasta, write_fasta};
pub use fastq::{parse_fastq, parse_fastq_complete, write_fastq, FastqScanner, RawRecord};
pub use record::SeqRecord;
pub use seqdb::{read_seqdb_parallel, write_seqdb};
