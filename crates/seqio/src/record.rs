//! The sequence record shared by all I/O formats.

/// One read (or contig/scaffold) with optional per-base quality.
///
/// Qualities are Phred+33 ASCII, as in FASTQ. Paired-end reads are stored
/// consecutively — record `2i` is the first mate of pair `i`, record
/// `2i + 1` the second — matching how the simulators emit them and how the
/// scaffolding modules (§4.4–4.5) consume them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqRecord {
    /// Record identifier (without the leading `@`/`>`).
    pub id: String,
    /// Upper-case ASCII `ACGTN` bases.
    pub seq: Vec<u8>,
    /// Phred+33 quality string, one byte per base; `None` for FASTA.
    pub qual: Option<Vec<u8>>,
}

impl SeqRecord {
    /// A quality-less record (FASTA-style).
    pub fn new(id: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        SeqRecord {
            id: id.into(),
            seq: seq.into(),
            qual: None,
        }
    }

    /// A record with uniform quality `q` (Phred score, not ASCII).
    pub fn with_uniform_quality(id: impl Into<String>, seq: impl Into<Vec<u8>>, q: u8) -> Self {
        let seq = seq.into();
        let qual = vec![q + 33; seq.len()];
        SeqRecord {
            id: id.into(),
            seq,
            qual: Some(qual),
        }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Phred score of base `i` (`None` if no qualities or `i` is out of
    /// range).
    pub fn phred(&self, i: usize) -> Option<u8> {
        self.qual
            .as_ref()
            .and_then(|q| q.get(i))
            .map(|b| b.saturating_sub(33))
    }

    /// Check the record's internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(q) = &self.qual {
            if q.len() != self.seq.len() {
                return Err(format!(
                    "record {}: quality length {} != sequence length {}",
                    self.id,
                    q.len(),
                    self.seq.len()
                ));
            }
        }
        if let Err(pos) = hipmer_dna::validate_dna(&self.seq) {
            return Err(format!(
                "record {}: invalid base {:?} at {}",
                self.id, self.seq[pos] as char, pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_quality_encodes_phred33() {
        let r = SeqRecord::with_uniform_quality("r1", *b"ACGT", 30);
        assert_eq!(r.qual.as_ref().unwrap(), &vec![63u8; 4]);
        assert_eq!(r.phred(0), Some(30));
    }

    #[test]
    fn validate_catches_length_mismatch() {
        let mut r = SeqRecord::with_uniform_quality("r", *b"ACGT", 30);
        r.qual.as_mut().unwrap().pop();
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_base() {
        let r = SeqRecord::new("r", *b"ACZT");
        assert!(r.validate().is_err());
        assert!(SeqRecord::new("r", *b"ACGTN").validate().is_ok());
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(SeqRecord::new("r", *b"ACG").len(), 3);
        assert!(SeqRecord::new("r", *b"").is_empty());
    }
}
