//! SWAR byte scanning for the parsers.
//!
//! The FASTQ/FASTA parsers spend their time finding newlines; doing that a
//! `u64` block at a time (memchr-style) instead of byte-by-byte is most of
//! the parse speedup measured in `BENCH_kernels.json`.

const LOW: u64 = 0x0101_0101_0101_0101;
const HIGH: u64 = 0x8080_8080_8080_8080;

/// Position of the first occurrence of `needle` in `hay`, scanning eight
/// bytes per step.
///
/// Uses the zero-byte test `(v - LOW) & !v & HIGH` on `v = block ^ pattern`.
/// The test can falsely mark bytes *after* the first true match (borrow
/// propagation), but with little-endian block loads the lowest set mark is
/// always the first match, so `trailing_zeros` is exact.
#[inline]
pub fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
    let pat = LOW * needle as u64;
    let mut chunks = hay.chunks_exact(8);
    let mut offset = 0usize;
    for c in chunks.by_ref() {
        let v = u64::from_le_bytes(c.try_into().expect("chunk of 8")) ^ pat;
        let marks = v.wrapping_sub(LOW) & !v & HIGH;
        if marks != 0 {
            return Some(offset + (marks.trailing_zeros() as usize >> 3));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| offset + i)
}

/// Position of the first `\n` in `buf`.
#[inline]
pub fn memchr_nl(buf: &[u8]) -> Option<usize> {
    memchr(b'\n', buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memchr_reference(needle: u8, hay: &[u8]) -> Option<usize> {
        hay.iter().position(|&b| b == needle)
    }

    #[test]
    fn matches_reference_on_crafted_buffers() {
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            b"\n".to_vec(),
            b"no newline here at all....".to_vec(),
            b"tail\n".to_vec(),
            b"\nhead".to_vec(),
            vec![b'\n'; 20],
        ];
        // Every alignment of a single needle in a 3-block buffer.
        for pos in 0..24 {
            let mut v = vec![b'x'; 24];
            v[pos] = b'\n';
            cases.push(v);
        }
        // Bytes that differ from '\n' only in the high bit (0x8A), and
        // borrow-propagation bait: a match followed by needle+1 bytes.
        cases.push(vec![0x8a, 0x8a, b'\n', 0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b]);
        for hay in &cases {
            assert_eq!(memchr_nl(hay), memchr_reference(b'\n', hay), "hay={hay:?}");
            assert_eq!(memchr(0x8a, hay), memchr_reference(0x8a, hay));
        }
    }

    #[test]
    fn finds_needle_at_every_offset_and_start() {
        let base: Vec<u8> = (0u8..64).map(|i| i.wrapping_mul(37) | 1).collect();
        for pos in 0..base.len() {
            let mut v = base.clone();
            v[pos] = 0;
            for start in 0..pos + 1 {
                assert_eq!(memchr(0, &v[start..]), Some(pos - start));
            }
        }
    }
}
