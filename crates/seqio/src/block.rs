//! The parallel block FASTQ reader (§3.3).
//!
//! Neither Ray nor ABySS had a scalable FASTQ reader; HipMer's samples the
//! file to estimate record lengths, derives per-rank byte split points,
//! fixes each split forward to the next true record boundary (a split can
//! land mid-record; the partial record belongs to the previous rank), and
//! then reads each range with large buffers, parsing in memory.
//!
//! Boundary detection cannot just look for `@` at line start — `@` is a
//! legal quality character (Phred 31). A candidate line is accepted as a
//! record header only if a whole well-formed record parses at it.

use crate::fastq::{parse_fastq, parse_fastq_complete};
use crate::record::SeqRecord;
use crate::scan::memchr_nl;
use hipmer_pgas::{CommStats, Team};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

/// How many bytes each rank samples to estimate the record length.
const SAMPLE_BYTES: usize = 64 * 1024;

/// The byte range of the file one rank is responsible for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FastqSplit {
    /// First byte of this rank's range (at a record boundary).
    pub start: u64,
    /// One past the last byte (at a record boundary, or file end).
    pub end: u64,
}

/// Find the first record boundary at or after the start of `buf`.
///
/// Scans line starts; a line is a header iff a complete, well-formed FASTQ
/// record parses there. Returns the offset *within `buf`*.
pub(crate) fn find_record_start(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0usize;
    loop {
        if line_start >= buf.len() {
            return None;
        }
        if buf[line_start] == b'@' {
            if let Ok((records, _)) = parse_fastq(&buf[line_start..]) {
                if !records.is_empty() {
                    return Some(line_start);
                }
            }
        }
        match memchr_nl(&buf[line_start..]) {
            Some(nl) => line_start += nl + 1,
            None => return None,
        }
    }
}

/// Estimate the average record length (bytes) from a sample buffer.
fn estimate_record_len(sample: &[u8]) -> usize {
    match parse_fastq(sample) {
        Ok((records, consumed)) if !records.is_empty() => consumed / records.len(),
        _ => 512,
    }
}

/// Resolve the true boundary at or after byte `offset`: reads a window and
/// scans for the first parsable record start. `offset == 0` is always a
/// boundary. Returns `file_len` when no boundary exists past `offset`.
fn resolve_boundary(
    file: &mut File,
    file_len: u64,
    offset: u64,
    est_record_len: usize,
    io_bytes: &mut u64,
) -> io::Result<u64> {
    if offset == 0 {
        return Ok(0);
    }
    if offset >= file_len {
        return Ok(file_len);
    }
    // Window: a handful of records' worth, growing if nothing parses
    // (quality lines full of '@'s can defeat a too-small window).
    let mut window = (est_record_len * 8).max(4096);
    loop {
        let len = window.min((file_len - offset) as usize);
        let mut buf = vec![0u8; len];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        *io_bytes += len as u64;
        if let Some(pos) = find_record_start(&buf) {
            return Ok(offset + pos as u64);
        }
        if len == (file_len - offset) as usize {
            // Scanned to end of file without a boundary: previous rank owns
            // the tail.
            return Ok(file_len);
        }
        window *= 4;
    }
}

/// Read a FASTQ file in parallel: every rank of `team` reads and parses its
/// own byte range. Returns per-rank record vectors (indexed by rank) and
/// the per-rank I/O counters.
///
/// Guarantees: the union of all ranks' records is exactly the file's
/// records, in order, with no duplicates — split fix-up assigns a record
/// crossing a naive split point to the earlier rank (the paper's rule:
/// "the previous partial read is processed by the neighboring processor
/// p_{i−1}").
pub fn read_fastq_parallel(
    team: &Team,
    path: &Path,
) -> io::Result<(Vec<Vec<SeqRecord>>, Vec<CommStats>)> {
    let file_len = std::fs::metadata(path)?.len();
    let ranks = team.ranks() as u64;

    let (results, stats) = team.run_named("io/fastq", |ctx| -> io::Result<Vec<SeqRecord>> {
        let mut file = File::open(path)?;
        let mut io_bytes = 0u64;

        // Sampling pass: estimate the record length near this rank's naive
        // offset (the paper samples ~1M reads across ranks; proportionally
        // we take a fixed-size block).
        let naive_start = file_len * ctx.rank as u64 / ranks;
        let naive_end = file_len * (ctx.rank as u64 + 1) / ranks;
        let sample_len = SAMPLE_BYTES.min(file_len as usize);
        let mut sample = vec![0u8; sample_len];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut sample)?;
        io_bytes += sample_len as u64;
        let est = estimate_record_len(&sample);
        drop(sample);

        // Fix both split points forward to true record boundaries. Both
        // neighbors compute the same function of the same naive offset, so
        // ranges tile the file exactly.
        let start = resolve_boundary(&mut file, file_len, naive_start, est, &mut io_bytes)?;
        let end = resolve_boundary(&mut file, file_len, naive_end, est, &mut io_bytes)?;

        let records = if start < end {
            // Large-buffer read of the whole range (MPI_File_read_at with
            // big buffers in the paper), parsed in memory. A record that
            // *starts* before `end` may finish after it, so read a little
            // past and keep only records starting in-range: simpler — since
            // `end` is itself a record boundary (or EOF), the range is
            // exactly whole records.
            let len = (end - start) as usize;
            let mut buf = vec![0u8; len];
            file.seek(SeekFrom::Start(start))?;
            file.read_exact(&mut buf)?;
            io_bytes += len as u64;
            // `end` is a record boundary (or EOF), so the range must parse
            // as whole records; `parse_fastq_complete` also tolerates a
            // final record with no trailing newline and names the failing
            // record on malformed input.
            parse_fastq_complete(&buf).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("rank {} range [{start},{end}): {e}", ctx.rank),
                )
            })?
        } else {
            Vec::new()
        };

        ctx.stats.io_read_bytes += io_bytes;
        Ok(records)
    });

    let mut per_rank = Vec::with_capacity(results.len());
    for r in results {
        per_rank.push(r?);
    }
    Ok((per_rank, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastq::write_fastq;
    use hipmer_pgas::Topology;

    fn write_test_file(n: usize, dir: &std::path::Path) -> (std::path::PathBuf, Vec<SeqRecord>) {
        let records: Vec<SeqRecord> = (0..n)
            .map(|i| {
                let len = 50 + (i * 13) % 80; // variable lengths
                let seq: Vec<u8> = (0..len).map(|j| b"ACGT"[(i + j) % 4]).collect();
                SeqRecord::with_uniform_quality(format!("read{i}/1 lib=A"), seq, 35)
            })
            .collect();
        let path = dir.join("test.fastq");
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        std::fs::write(&path, &buf).unwrap();
        (path, records)
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hipmer-seqio-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parallel_read_is_exact_partition() {
        let dir = tempdir();
        let (path, expect) = write_test_file(500, &dir);
        for ranks in [1usize, 2, 3, 7, 16] {
            let team = Team::new(Topology::new(ranks, 4));
            let (per_rank, stats) = read_fastq_parallel(&team, &path).unwrap();
            let got: Vec<SeqRecord> = per_rank.into_iter().flatten().collect();
            assert_eq!(got, expect, "ranks={ranks}");
            assert!(stats.iter().all(|s| s.io_read_bytes > 0));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn more_ranks_than_records() {
        let dir = tempdir();
        let (path, expect) = write_test_file(3, &dir);
        let team = Team::new(Topology::new(64, 8));
        let (per_rank, _) = read_fastq_parallel(&team, &path).unwrap();
        let got: Vec<SeqRecord> = per_rank.into_iter().flatten().collect();
        assert_eq!(got, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn boundary_detection_survives_at_in_quality() {
        // Qualities made entirely of '@' (Phred 31) — a naive scanner
        // would misidentify them as headers.
        let txt = b"@r1\nACGTACGT\n+\n@@@@@@@@\n@r2\nTTTTAAAA\n+\n@@@@@@@@\n";
        // From offset 1 (inside r1's header) the next record start is r2's.
        let pos = find_record_start(&txt[1..]).unwrap();
        assert_eq!(&txt[1 + pos..1 + pos + 3], b"@r2");
    }

    #[test]
    fn find_record_start_none_in_garbage() {
        assert_eq!(find_record_start(b"no fastq here\njust lines\n"), None);
    }

    #[test]
    fn io_bytes_accounted_per_rank() {
        let dir = tempdir();
        let (path, _) = write_test_file(200, &dir);
        let file_len = std::fs::metadata(&path).unwrap().len();
        let team = Team::new(Topology::new(4, 4));
        let (_, stats) = read_fastq_parallel(&team, &path).unwrap();
        let total: u64 = stats.iter().map(|s| s.io_read_bytes).sum();
        // At least every byte read once (plus sampling/boundary overhead).
        assert!(total >= file_len);
        std::fs::remove_dir_all(&dir).ok();
    }
}
