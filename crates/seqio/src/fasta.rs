//! FASTA parsing and writing (contig and scaffold output).

use crate::record::SeqRecord;
use crate::scan::memchr_nl;
use std::io::{self, Write};

/// Lines of `buf` (SWAR newline scan), without terminators; the final
/// line needs no trailing newline.
struct Lines<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for Lines<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let line = match memchr_nl(&self.buf[self.pos..]) {
            Some(nl) => {
                let line = &self.buf[self.pos..self.pos + nl];
                self.pos += nl + 1;
                line
            }
            None => {
                let line = &self.buf[self.pos..];
                self.pos = self.buf.len();
                line
            }
        };
        Some(line)
    }
}

/// Parse a whole FASTA buffer (multi-line sequences supported).
pub fn parse_fasta(buf: &[u8]) -> Result<Vec<SeqRecord>, String> {
    let mut records = Vec::new();
    let mut id: Option<String> = None;
    let mut seq: Vec<u8> = Vec::new();

    for line in (Lines { buf, pos: 0 }) {
        let line = match line.last() {
            Some(b'\r') => &line[..line.len() - 1],
            _ => line,
        };
        if line.is_empty() {
            continue;
        }
        if line[0] == b'>' {
            if let Some(prev) = id.take() {
                records.push(SeqRecord::new(prev, std::mem::take(&mut seq)));
            }
            id = Some(String::from_utf8_lossy(&line[1..]).into_owned());
        } else {
            if id.is_none() {
                return Err("sequence data before first '>' header".into());
            }
            seq.extend_from_slice(line);
        }
    }
    if let Some(last) = id {
        records.push(SeqRecord::new(last, seq));
    }
    Ok(records)
}

/// Write records as FASTA, wrapping sequence lines at `width` bases
/// (0 = no wrapping).
pub fn write_fasta<W: Write>(w: &mut W, records: &[SeqRecord], width: usize) -> io::Result<()> {
    for r in records {
        w.write_all(b">")?;
        w.write_all(r.id.as_bytes())?;
        w.write_all(b"\n")?;
        if width == 0 {
            w.write_all(&r.seq)?;
            w.write_all(b"\n")?;
        } else {
            for chunk in r.seq.chunks(width) {
                w.write_all(chunk)?;
                w.write_all(b"\n")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unwrapped() {
        let records = vec![
            SeqRecord::new("contig_1", *b"ACGTACGT"),
            SeqRecord::new("contig_2 descr", *b"TTGG"),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 0).unwrap();
        assert_eq!(parse_fasta(&buf).unwrap(), records);
    }

    #[test]
    fn roundtrip_wrapped() {
        let records = vec![SeqRecord::new("c", vec![b'A'; 250])];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 80).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 5); // header + 4 seq lines
        assert_eq!(parse_fasta(&buf).unwrap(), records);
    }

    #[test]
    fn multiline_records_concatenate() {
        let txt = b">a\nACGT\nTTTT\n>b\nGG\n";
        let records = parse_fasta(txt).unwrap();
        assert_eq!(records[0].seq, b"ACGTTTTT");
        assert_eq!(records[1].seq, b"GG");
    }

    #[test]
    fn rejects_headerless_data() {
        assert!(parse_fasta(b"ACGT\n").is_err());
    }

    #[test]
    fn empty_ok() {
        assert!(parse_fasta(b"").unwrap().is_empty());
    }

    #[test]
    fn empty_sequence_record_preserved() {
        let records = parse_fasta(b">empty\n>full\nAC\n").unwrap();
        assert_eq!(records.len(), 2);
        assert!(records[0].seq.is_empty());
    }
}
