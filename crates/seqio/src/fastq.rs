//! FASTQ parsing and writing.
//!
//! The strict 4-line flavor modern sequencers emit: `@id`, bases, `+`,
//! qualities. The parser is buffer-oriented (parse a whole `&[u8]` already
//! in memory) because the parallel block reader of §3.3 reads large chunks
//! with big buffered reads and parses in memory — that is the key to its
//! I/O performance.

use crate::record::SeqRecord;
use std::io::{self, Write};

/// Parse every complete FASTQ record in `buf`.
///
/// Returns the records and the byte offset one past the last complete
/// record (callers feeding partial buffers can resume there). Malformed
/// input yields an error naming the offending record index.
pub fn parse_fastq(buf: &[u8]) -> Result<(Vec<SeqRecord>, usize), String> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut consumed = 0usize;

    while pos < buf.len() {
        // A complete record needs four newline-terminated lines; each line
        // range excludes its terminating newline, so the next line starts
        // one past the end.
        let Some(l1) = next_line(buf, pos) else { break };
        let Some(l2) = next_line(buf, l1.end + 1) else {
            break;
        };
        let Some(l3) = next_line(buf, l2.end + 1) else {
            break;
        };
        let Some(l4) = next_line(buf, l3.end + 1) else {
            break;
        };

        let header = &buf[l1.clone()];
        if header.is_empty() || header[0] != b'@' {
            return Err(format!(
                "record {}: header does not start with '@'",
                records.len()
            ));
        }
        let plus = &buf[l3.clone()];
        if plus.is_empty() || plus[0] != b'+' {
            return Err(format!(
                "record {}: separator does not start with '+'",
                records.len()
            ));
        }
        let seq = trim_cr(&buf[l2.clone()]);
        let qual = trim_cr(&buf[l4.clone()]);
        if seq.len() != qual.len() {
            return Err(format!(
                "record {}: sequence/quality length mismatch",
                records.len()
            ));
        }
        let id = String::from_utf8_lossy(trim_cr(&header[1..])).into_owned();
        records.push(SeqRecord {
            id,
            seq: seq.to_vec(),
            qual: Some(qual.to_vec()),
        });
        pos = l4.end + 1;
        consumed = pos;
    }
    Ok((records, consumed))
}

/// The byte range of the line starting at `from` (exclusive of the
/// terminating newline); `None` if no newline before end of buffer.
fn next_line(buf: &[u8], from: usize) -> Option<std::ops::Range<usize>> {
    if from >= buf.len() {
        return None;
    }
    memchr_nl(&buf[from..]).map(|nl| from..from + nl)
}

/// Position of the first `\n` in `buf`.
#[inline]
fn memchr_nl(buf: &[u8]) -> Option<usize> {
    buf.iter().position(|&b| b == b'\n')
}

/// Strip a trailing `\r` (Windows line endings).
fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

/// Write records in 4-line FASTQ. Records without qualities get `I`
/// (Phred 40) filler, so round-tripping stays well-formed.
pub fn write_fastq<W: Write>(w: &mut W, records: &[SeqRecord]) -> io::Result<()> {
    for r in records {
        w.write_all(b"@")?;
        w.write_all(r.id.as_bytes())?;
        w.write_all(b"\n")?;
        w.write_all(&r.seq)?;
        w.write_all(b"\n+\n")?;
        match &r.qual {
            Some(q) => w.write_all(q)?,
            None => w.write_all(&vec![b'I'; r.seq.len()])?,
        }
        w.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SeqRecord> {
        vec![
            SeqRecord::with_uniform_quality("read1/1", *b"ACGTACGT", 35),
            SeqRecord::with_uniform_quality("read1/2", *b"TTGGCCAA", 20),
        ]
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &sample()).unwrap();
        let (records, consumed) = parse_fastq(&buf).unwrap();
        assert_eq!(records, sample());
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn partial_record_left_unconsumed() {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &sample()).unwrap();
        let cut = buf.len() - 5; // truncate inside the last record
        let (records, consumed) = parse_fastq(&buf[..cut]).unwrap();
        assert_eq!(records.len(), 1);
        assert!(consumed < cut);
        // Resuming from `consumed` with the full tail completes the parse.
        let (rest, _) = parse_fastq(&buf[consumed..]).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0], sample()[1]);
    }

    #[test]
    fn rejects_missing_at() {
        let bad = b"read1\nACGT\n+\nIIII\n";
        assert!(parse_fastq(bad).is_err());
    }

    #[test]
    fn rejects_bad_separator() {
        let bad = b"@read1\nACGT\nX\nIIII\n";
        assert!(parse_fastq(bad).is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        let bad = b"@read1\nACGT\n+\nIII\n";
        assert!(parse_fastq(bad).is_err());
    }

    #[test]
    fn quality_line_may_start_with_at() {
        // '@' is Phred 31 — legal in quality strings; the 4-line structure
        // disambiguates.
        let txt = b"@r1\nACGT\n+\n@@@@\n@r2\nTTTT\n+\nIIII\n";
        let (records, _) = parse_fastq(txt).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].phred(0), Some(31));
    }

    #[test]
    fn handles_crlf() {
        let txt = b"@r1\r\nACGT\r\n+\r\nIIII\r\n";
        let (records, _) = parse_fastq(txt).unwrap();
        assert_eq!(records[0].seq, b"ACGT");
        assert_eq!(records[0].id, "r1");
    }

    #[test]
    fn empty_input_ok() {
        let (records, consumed) = parse_fastq(b"").unwrap();
        assert!(records.is_empty());
        assert_eq!(consumed, 0);
    }
}
