//! FASTQ parsing and writing.
//!
//! The strict 4-line flavor modern sequencers emit: `@id`, bases, `+`,
//! qualities. The parser is buffer-oriented (parse a whole `&[u8]` already
//! in memory) because the parallel block reader of §3.3 reads large chunks
//! with big buffered reads and parses in memory — that is the key to its
//! I/O performance.
//!
//! The hot path is [`FastqScanner`]: a zero-allocation scanner that yields
//! borrowed line slices found with SWAR (`u64`-block) newline search.
//! [`parse_fastq`] and [`parse_fastq_complete`] materialize owned
//! [`SeqRecord`]s from it only at the edge; [`parse_fastq_reference`] keeps
//! the original byte-loop parser as the executable specification for the
//! differential tests and the before/after benchmark.

use crate::record::SeqRecord;
use crate::scan::memchr_nl;
use std::io::{self, Write};

/// One FASTQ record as borrowed slices of the input buffer (no copies).
///
/// `id` has the leading `@` and any trailing CR removed; `seq`/`qual` have
/// trailing CRs removed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawRecord<'a> {
    /// Record identifier.
    pub id: &'a [u8],
    /// Base line.
    pub seq: &'a [u8],
    /// Quality line (same length as `seq`).
    pub qual: &'a [u8],
}

/// Zero-allocation 4-line FASTQ scanner over an in-memory buffer.
///
/// Two termination modes: a *streaming* scanner (`new`) stops cleanly
/// before a trailing partial record so the caller can refill and resume at
/// [`consumed`](Self::consumed); a *complete* scanner (`new_complete`)
/// treats end-of-buffer as a line terminator and reports a trailing
/// partial record as a record-numbered error. Records are numbered from 1
/// in error messages.
pub struct FastqScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    nrec: usize,
    consumed: usize,
    complete: bool,
}

impl<'a> FastqScanner<'a> {
    /// Streaming scanner: partial trailing records are left unconsumed.
    pub fn new(buf: &'a [u8]) -> Self {
        FastqScanner {
            buf,
            pos: 0,
            nrec: 0,
            consumed: 0,
            complete: false,
        }
    }

    /// Whole-buffer scanner: a partial trailing record is an error.
    pub fn new_complete(buf: &'a [u8]) -> Self {
        FastqScanner {
            complete: true,
            ..Self::new(buf)
        }
    }

    /// Byte offset one past the last complete record scanned so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Records scanned so far.
    pub fn records(&self) -> usize {
        self.nrec
    }

    /// The next line (without `\n`), advancing past it; `None` at end of
    /// buffer, or — in streaming mode — when the final line is
    /// unterminated.
    #[inline]
    fn line(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.buf.len() {
            return None;
        }
        match memchr_nl(&self.buf[self.pos..]) {
            Some(nl) => {
                let line = &self.buf[self.pos..self.pos + nl];
                self.pos += nl + 1;
                Some(line)
            }
            None if self.complete => {
                let line = &self.buf[self.pos..];
                self.pos = self.buf.len();
                Some(line)
            }
            None => None,
        }
    }

    /// Scan the next record. `Ok(None)` at clean end of input.
    pub fn next_record(&mut self) -> Result<Option<RawRecord<'a>>, String> {
        let start = self.pos;
        let mut lines = [&[][..]; 4];
        for (i, slot) in lines.iter_mut().enumerate() {
            match self.line() {
                Some(l) => *slot = l,
                None if i == 0 || !self.complete => {
                    // Streaming: rewind so the caller can resume here.
                    self.pos = start;
                    return Ok(None);
                }
                None => {
                    return Err(format!(
                        "record {}: truncated final record ({} of 4 lines)",
                        self.nrec + 1,
                        i
                    ));
                }
            }
        }
        let [header, seq, plus, qual] = lines;
        if header.is_empty() || header[0] != b'@' {
            return Err(format!(
                "record {}: header does not start with '@'",
                self.nrec + 1
            ));
        }
        if plus.is_empty() || plus[0] != b'+' {
            return Err(format!(
                "record {}: separator does not start with '+'",
                self.nrec + 1
            ));
        }
        let seq = trim_cr(seq);
        let qual = trim_cr(qual);
        if seq.len() != qual.len() {
            return Err(format!(
                "record {}: sequence/quality length mismatch",
                self.nrec + 1
            ));
        }
        self.nrec += 1;
        self.consumed = self.pos;
        Ok(Some(RawRecord {
            id: trim_cr(&header[1..]),
            seq,
            qual,
        }))
    }
}

impl<'a> RawRecord<'a> {
    /// Materialize an owned record (the only allocations in a parse).
    fn to_owned_record(self) -> SeqRecord {
        SeqRecord {
            id: String::from_utf8_lossy(self.id).into_owned(),
            seq: self.seq.to_vec(),
            qual: Some(self.qual.to_vec()),
        }
    }
}

/// Parse every complete FASTQ record in `buf`.
///
/// Returns the records and the byte offset one past the last complete
/// record (callers feeding partial buffers can resume there). Malformed
/// input yields an error naming the offending record index.
pub fn parse_fastq(buf: &[u8]) -> Result<(Vec<SeqRecord>, usize), String> {
    let mut scanner = FastqScanner::new(buf);
    let mut records = Vec::new();
    while let Some(raw) = scanner.next_record()? {
        records.push(raw.to_owned_record());
    }
    Ok((records, scanner.consumed()))
}

/// Parse a buffer that must hold only whole records (a complete file, or a
/// rank's boundary-aligned block).
///
/// Unlike [`parse_fastq`], end-of-buffer terminates the final line (no
/// trailing newline needed) and a trailing partial record is an error
/// naming the record index, not silently-unconsumed input.
pub fn parse_fastq_complete(buf: &[u8]) -> Result<Vec<SeqRecord>, String> {
    let mut scanner = FastqScanner::new_complete(buf);
    let mut records = Vec::new();
    while let Some(raw) = scanner.next_record()? {
        records.push(raw.to_owned_record());
    }
    Ok(records)
}

/// The original byte-at-a-time parser: the executable specification
/// [`parse_fastq`] is pinned against (and the "before" half of the FASTQ
/// kernel benchmark). Not for production use.
#[doc(hidden)]
pub fn parse_fastq_reference(buf: &[u8]) -> Result<(Vec<SeqRecord>, usize), String> {
    fn next_line(buf: &[u8], from: usize) -> Option<std::ops::Range<usize>> {
        if from >= buf.len() {
            return None;
        }
        buf[from..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|nl| from..from + nl)
    }

    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut consumed = 0usize;

    while pos < buf.len() {
        // A complete record needs four newline-terminated lines; each line
        // range excludes its terminating newline, so the next line starts
        // one past the end.
        let Some(l1) = next_line(buf, pos) else { break };
        let Some(l2) = next_line(buf, l1.end + 1) else {
            break;
        };
        let Some(l3) = next_line(buf, l2.end + 1) else {
            break;
        };
        let Some(l4) = next_line(buf, l3.end + 1) else {
            break;
        };

        let header = &buf[l1.clone()];
        if header.is_empty() || header[0] != b'@' {
            return Err(format!(
                "record {}: header does not start with '@'",
                records.len() + 1
            ));
        }
        let plus = &buf[l3.clone()];
        if plus.is_empty() || plus[0] != b'+' {
            return Err(format!(
                "record {}: separator does not start with '+'",
                records.len() + 1
            ));
        }
        let seq = trim_cr(&buf[l2.clone()]);
        let qual = trim_cr(&buf[l4.clone()]);
        if seq.len() != qual.len() {
            return Err(format!(
                "record {}: sequence/quality length mismatch",
                records.len() + 1
            ));
        }
        let id = String::from_utf8_lossy(trim_cr(&header[1..])).into_owned();
        records.push(SeqRecord {
            id,
            seq: seq.to_vec(),
            qual: Some(qual.to_vec()),
        });
        pos = l4.end + 1;
        consumed = pos;
    }
    Ok((records, consumed))
}

/// Strip a trailing `\r` (Windows line endings).
fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

/// Write records in 4-line FASTQ. Records without qualities get `I`
/// (Phred 40) filler, so round-tripping stays well-formed.
pub fn write_fastq<W: Write>(w: &mut W, records: &[SeqRecord]) -> io::Result<()> {
    // Filler grows to the longest quality-less record and is reused.
    let mut filler: Vec<u8> = Vec::new();
    for r in records {
        w.write_all(b"@")?;
        w.write_all(r.id.as_bytes())?;
        w.write_all(b"\n")?;
        w.write_all(&r.seq)?;
        w.write_all(b"\n+\n")?;
        match &r.qual {
            Some(q) => w.write_all(q)?,
            None => {
                if filler.len() < r.seq.len() {
                    filler.resize(r.seq.len(), b'I');
                }
                w.write_all(&filler[..r.seq.len()])?
            }
        }
        w.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SeqRecord> {
        vec![
            SeqRecord::with_uniform_quality("read1/1", *b"ACGTACGT", 35),
            SeqRecord::with_uniform_quality("read1/2", *b"TTGGCCAA", 20),
        ]
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &sample()).unwrap();
        let (records, consumed) = parse_fastq(&buf).unwrap();
        assert_eq!(records, sample());
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn quality_less_records_get_filler() {
        let recs = vec![
            SeqRecord::new("a", *b"ACGTACGT"),
            SeqRecord::new("b", *b"AC"),
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        let (parsed, _) = parse_fastq(&buf).unwrap();
        assert_eq!(parsed[0].qual.as_deref(), Some(&b"IIIIIIII"[..]));
        assert_eq!(parsed[1].qual.as_deref(), Some(&b"II"[..]));
    }

    #[test]
    fn partial_record_left_unconsumed() {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &sample()).unwrap();
        let cut = buf.len() - 5; // truncate inside the last record
        let (records, consumed) = parse_fastq(&buf[..cut]).unwrap();
        assert_eq!(records.len(), 1);
        assert!(consumed < cut);
        // Resuming from `consumed` with the full tail completes the parse.
        let (rest, _) = parse_fastq(&buf[consumed..]).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0], sample()[1]);
    }

    #[test]
    fn complete_parse_flags_truncation_with_record_number() {
        // Second record cut off after its sequence line.
        let txt = b"@r1\nACGT\n+\nIIII\n@r2\nTTTT\n";
        let err = parse_fastq_complete(txt).unwrap_err();
        assert!(err.contains("record 2"), "got: {err}");
        assert!(err.contains("truncated"), "got: {err}");
        // A mid-line cut surfaces as a (still record-numbered) mismatch.
        let mut buf = Vec::new();
        write_fastq(&mut buf, &sample()).unwrap();
        let err = parse_fastq_complete(&buf[..buf.len() - 5]).unwrap_err();
        assert!(err.contains("record 2"), "got: {err}");
    }

    #[test]
    fn complete_parse_accepts_missing_final_newline() {
        let txt = b"@r1\nACGT\n+\nIIII";
        let records = parse_fastq_complete(txt).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, b"ACGT");
        // The streaming parser, by contrast, leaves it unconsumed.
        let (streamed, consumed) = parse_fastq(txt).unwrap();
        assert!(streamed.is_empty());
        assert_eq!(consumed, 0);
    }

    #[test]
    fn rejects_missing_at() {
        let bad = b"read1\nACGT\n+\nIIII\n";
        assert!(parse_fastq(bad).is_err());
        assert!(parse_fastq_complete(bad).is_err());
    }

    #[test]
    fn rejects_bad_separator() {
        let bad = b"@read1\nACGT\nX\nIIII\n";
        assert!(parse_fastq(bad).is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        let bad = b"@read1\nACGT\n+\nIII\n";
        let err = parse_fastq(bad).unwrap_err();
        assert!(err.contains("record 1"), "got: {err}");
    }

    #[test]
    fn errors_name_the_failing_record_index() {
        let bad = b"@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\nIII\n";
        let err = parse_fastq(bad).unwrap_err();
        assert!(err.contains("record 2"), "got: {err}");
    }

    #[test]
    fn quality_line_may_start_with_at() {
        // '@' is Phred 31 — legal in quality strings; the 4-line structure
        // disambiguates.
        let txt = b"@r1\nACGT\n+\n@@@@\n@r2\nTTTT\n+\nIIII\n";
        let (records, _) = parse_fastq(txt).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].phred(0), Some(31));
    }

    #[test]
    fn handles_crlf() {
        let txt = b"@r1\r\nACGT\r\n+\r\nIIII\r\n";
        let (records, _) = parse_fastq(txt).unwrap();
        assert_eq!(records[0].seq, b"ACGT");
        assert_eq!(records[0].id, "r1");
    }

    #[test]
    fn crlf_only_lines_are_rejected_not_panicked() {
        // A record of bare CRLF lines: the header line is "\r" after
        // newline split, which is not a valid '@' header.
        let txt = b"\r\n\r\n\r\n\r\n";
        let err = parse_fastq(txt).unwrap_err();
        assert!(err.contains("record 1"), "got: {err}");
        assert!(parse_fastq_complete(txt).is_err());
    }

    #[test]
    fn empty_input_ok() {
        let (records, consumed) = parse_fastq(b"").unwrap();
        assert!(records.is_empty());
        assert_eq!(consumed, 0);
        assert!(parse_fastq_complete(b"").unwrap().is_empty());
    }

    #[test]
    fn optimized_parser_equals_reference() {
        let mut full = Vec::new();
        write_fastq(&mut full, &sample()).unwrap();
        let mut cases: Vec<Vec<u8>> = vec![
            full.clone(),
            b"".to_vec(),
            b"@r1\r\nACGT\r\n+\r\nIIII\r\n".to_vec(),
            b"@r1\nACGT\n+\n@@@@\n".to_vec(),
            b"read1\nACGT\n+\nIIII\n".to_vec(),
            b"@read1\nACGT\nX\nIIII\n".to_vec(),
            b"@read1\nACGT\n+\nIII\n".to_vec(),
            b"\r\n\r\n\r\n\r\n".to_vec(),
        ];
        // Every truncation point of a well-formed two-record file.
        for cut in 0..full.len() {
            cases.push(full[..cut].to_vec());
        }
        for buf in &cases {
            assert_eq!(
                parse_fastq(buf),
                parse_fastq_reference(buf),
                "buf={:?}",
                String::from_utf8_lossy(buf)
            );
        }
    }
}
