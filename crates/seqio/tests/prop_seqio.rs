//! Property tests for sequence I/O: round-trips and the parallel reader's
//! exact-partition guarantee under arbitrary record shapes.

use hipmer_dna::BASES;
use hipmer_pgas::{Team, Topology};
use hipmer_seqio::fastq::parse_fastq_reference;
use hipmer_seqio::{
    parse_fasta, parse_fastq, parse_fastq_complete, read_fastq_parallel, write_fasta, write_fastq,
    SeqRecord,
};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = SeqRecord> {
    (
        "[a-zA-Z0-9_/ .:-]{1,30}",
        prop::collection::vec(prop::sample::select(&BASES[..]), 1..200),
        2u8..41,
    )
        .prop_map(|(id, seq, q)| SeqRecord::with_uniform_quality(id, seq, q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fastq_roundtrip(records in prop::collection::vec(record_strategy(), 0..40)) {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let (parsed, consumed) = parse_fastq(&buf).unwrap();
        prop_assert_eq!(parsed, records);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn fasta_roundtrip(records in prop::collection::vec(record_strategy(), 0..40), width in 0usize..100) {
        // FASTA drops qualities.
        let plain: Vec<SeqRecord> = records
            .iter()
            .map(|r| SeqRecord::new(r.id.clone(), r.seq.clone()))
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &plain, width).unwrap();
        prop_assert_eq!(parse_fasta(&buf).unwrap(), plain);
    }

    #[test]
    fn optimized_fastq_parser_equals_reference_on_truncations(
        records in prop::collection::vec(record_strategy(), 0..12),
        cut_back in 0usize..64,
    ) {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let cut = buf.len().saturating_sub(cut_back);
        prop_assert_eq!(parse_fastq(&buf[..cut]), parse_fastq_reference(&buf[..cut]));
    }

    #[test]
    fn optimized_fastq_parser_equals_reference_on_arbitrary_bytes(
        buf in prop::collection::vec(
            prop::sample::select(&b"@+ACGT\r\nI!x"[..]), 0..300),
    ) {
        prop_assert_eq!(parse_fastq(&buf), parse_fastq_reference(&buf));
    }

    #[test]
    fn complete_parse_agrees_with_streaming_on_whole_files(
        records in prop::collection::vec(record_strategy(), 0..12),
    ) {
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        prop_assert_eq!(parse_fastq_complete(&buf).unwrap(), records);
    }

    #[test]
    fn parallel_reader_partitions_exactly(
        records in prop::collection::vec(record_strategy(), 1..60),
        ranks in 1usize..24,
        case in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "hipmer-prop-seqio-{}-{case}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let team = Team::new(Topology::new(ranks, 4));
        let (per_rank, _) = read_fastq_parallel(&team, &path).unwrap();
        let got: Vec<SeqRecord> = per_rank.into_iter().flatten().collect();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(got, records);
    }
}
