//! End-to-end tests of the job service over real sockets, using a mock
//! executor so scheduling, caching, and drain policies are exercised in
//! milliseconds. The real-pipeline integration test lives in the `hipmer`
//! crate (`tests/serve.rs`).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hipmer_pgas::json::Value;
use hipmer_pgas::TeamLease;
use hipmer_serve::http;
use hipmer_serve::loadgen::{self, LoadgenConfig};
use hipmer_serve::{ExecOutcome, JobExecutor, JobSpec, ServeConfig, Server};

/// Executor that "assembles" by sleeping, writing deterministic outputs
/// derived from the spec. Counts real executions so tests can prove that
/// cache hits did not recompute.
struct MockExecutor {
    work: Duration,
    executions: AtomicU64,
    /// When true, interrupt as soon as the cancel flag is observed.
    honor_cancel: bool,
}

impl MockExecutor {
    fn new(work: Duration) -> Self {
        MockExecutor {
            work,
            executions: AtomicU64::new(0),
            honor_cancel: true,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl JobExecutor for MockExecutor {
    fn cache_key(&self, spec: &JobSpec) -> Result<String, String> {
        if spec.input == "/missing" {
            return Err("input not readable".to_string());
        }
        let material = format!(
            "{}|{}|{}|{}|{}|{}",
            spec.input, spec.k, spec.ranks, spec.ranks_per_node, spec.rounds, spec.metagenome
        );
        Ok(format!("{:016x}", fnv1a(material.as_bytes())))
    }

    fn execute(
        &self,
        _job_id: u64,
        spec: &JobSpec,
        lease: &TeamLease,
        out_dir: &Path,
        _resume: bool,
        cancel: &Arc<AtomicBool>,
    ) -> ExecOutcome {
        self.executions.fetch_add(1, Ordering::SeqCst);
        // Leave resumable state behind immediately, like the pipeline's
        // checkpoint manifest.
        std::fs::write(out_dir.join("checkpoints").join("manifest.json"), "{}").unwrap();
        let deadline = Instant::now() + self.work;
        while Instant::now() < deadline {
            if self.honor_cancel && cancel.load(Ordering::SeqCst) {
                return ExecOutcome::Interrupted;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let fasta = format!(">scaffold_1 input={} k={}\nACGTACGT\n", spec.input, spec.k);
        std::fs::write(out_dir.join("scaffolds.fasta"), &fasta).unwrap();
        std::fs::write(out_dir.join("report.json"), "{\"schema_version\": 6}").unwrap();
        std::fs::write(out_dir.join("trace.json"), "[]").unwrap();
        let mut summary = Value::obj();
        summary.set("scaffolds", 1u64).set("ranks", lease.ranks());
        ExecOutcome::Completed { summary }
    }
}

fn tmp_state(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hipmer-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(
    tag: &str,
    work: Duration,
    cfg_tweak: impl FnOnce(&mut ServeConfig),
) -> (Server, String, Arc<MockExecutor>) {
    let exec = Arc::new(MockExecutor::new(work));
    let mut cfg = ServeConfig {
        state_dir: tmp_state(tag),
        pool_ranks: 8,
        ranks_per_node: 4,
        pool_threads: Some(2),
        ..ServeConfig::default()
    };
    cfg_tweak(&mut cfg);
    let server = Server::start(cfg, exec.clone() as Arc<dyn JobExecutor>).unwrap();
    let addr = server.addr().to_string();
    (server, addr, exec)
}

fn submit(addr: &str, input: &str, tenant: &str) -> (u16, Value) {
    let body = format!(r#"{{"input": "{input}", "tenant": "{tenant}", "ranks": 4}}"#);
    let (status, reply) = http::request(addr, "POST", "/v1/jobs", Some(body.as_bytes())).unwrap();
    let doc = Value::parse(std::str::from_utf8(&reply).unwrap()).unwrap_or(Value::Null);
    (status, doc)
}

fn wait_terminal(addr: &str, id: u64, timeout: Duration) -> Value {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, reply) = http::request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200, "job {id} lookup failed");
        let doc = Value::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        match doc.get("status").and_then(Value::as_str) {
            Some("queued") | Some("running") => {
                assert!(Instant::now() < deadline, "job {id} stuck: {doc:?}");
                std::thread::sleep(Duration::from_millis(10));
            }
            _ => return doc,
        }
    }
}

fn get_json(addr: &str, path: &str) -> (u16, Value) {
    let (status, reply) = http::request(addr, "GET", path, None).unwrap();
    let doc = Value::parse(std::str::from_utf8(&reply).unwrap_or("null")).unwrap_or(Value::Null);
    (status, doc)
}

#[test]
fn fresh_job_completes_and_serves_artifacts() {
    let (server, addr, exec) = start("fresh", Duration::from_millis(30), |_| {});
    let (status, doc) = submit(&addr, "/data/a.fastq", "alice");
    assert_eq!(status, 200, "{doc:?}");
    let id = doc.get("id").and_then(Value::as_u64).unwrap();
    let done = wait_terminal(&addr, id, Duration::from_secs(10));
    assert_eq!(
        done.get("status").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(done.get("cache").and_then(Value::as_str), Some("miss"));
    assert_eq!(exec.executions.load(Ordering::SeqCst), 1);

    let (status, fasta) =
        http::request(&addr, "GET", &format!("/v1/jobs/{id}/fasta"), None).unwrap();
    assert_eq!(status, 200);
    assert!(String::from_utf8(fasta).unwrap().starts_with(">scaffold_1"));
    let (status, report) = get_json(&addr, &format!("/v1/jobs/{id}/report"));
    assert_eq!(status, 200);
    assert_eq!(
        report.get("schema_version").and_then(Value::as_u64),
        Some(6)
    );

    let (status, health) = get_json(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("draining").and_then(Value::as_bool), Some(false));

    let (_, _) = http::request(&addr, "POST", "/admin/drain", None).unwrap();
    server.join();
}

#[test]
fn duplicates_hit_the_cache_instead_of_recomputing() {
    let (server, addr, exec) = start("dups", Duration::from_millis(80), |_| {});
    // Primary plus a duplicate submitted while the primary runs.
    let (_, d1) = submit(&addr, "/data/dup.fastq", "alice");
    let (_, d2) = submit(&addr, "/data/dup.fastq", "bob");
    let id1 = d1.get("id").and_then(Value::as_u64).unwrap();
    let id2 = d2.get("id").and_then(Value::as_u64).unwrap();
    let done1 = wait_terminal(&addr, id1, Duration::from_secs(10));
    let done2 = wait_terminal(&addr, id2, Duration::from_secs(10));
    assert_eq!(done1.get("cache").and_then(Value::as_str), Some("miss"));
    assert_eq!(
        done2.get("status").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(done2.get("cache").and_then(Value::as_str), Some("hit"));
    // A third submission after completion is an immediate hit.
    let (_, d3) = submit(&addr, "/data/dup.fastq", "carol");
    let id3 = d3.get("id").and_then(Value::as_u64).unwrap();
    let done3 = wait_terminal(&addr, id3, Duration::from_secs(10));
    assert_eq!(done3.get("cache").and_then(Value::as_str), Some("hit"));
    // Only the primary actually executed.
    assert_eq!(exec.executions.load(Ordering::SeqCst), 1);
    // All three return byte-identical FASTA.
    let f1 = http::request(&addr, "GET", &format!("/v1/jobs/{id1}/fasta"), None)
        .unwrap()
        .1;
    let f2 = http::request(&addr, "GET", &format!("/v1/jobs/{id2}/fasta"), None)
        .unwrap()
        .1;
    let f3 = http::request(&addr, "GET", &format!("/v1/jobs/{id3}/fasta"), None)
        .unwrap()
        .1;
    assert_eq!(f1, f2);
    assert_eq!(f1, f3);

    let (_, stats) = get_json(&addr, "/v1/stats");
    assert_eq!(stats.get("cache_hits").and_then(Value::as_u64), Some(2));
    assert_eq!(stats.get("completed").and_then(Value::as_u64), Some(3));

    let _ = http::request(&addr, "POST", "/admin/drain", None).unwrap();
    server.join();
}

#[test]
fn full_queue_rejects_with_429() {
    let (server, addr, _exec) = start("queuefull", Duration::from_millis(200), |cfg| {
        cfg.queue_capacity = 2;
        cfg.tenant_quota = 16;
        // One-rank pool so jobs serialize and the queue actually fills.
        cfg.pool_ranks = 1;
        cfg.ranks_per_node = 1;
    });
    // Distinct inputs (distinct cache keys) from distinct tenants.
    let mut rejects = 0;
    for i in 0..5 {
        let (status, doc) = submit(&addr, &format!("/data/{i}.fastq"), &format!("t{i}"));
        match status {
            200 => {}
            429 => {
                rejects += 1;
                assert_eq!(doc.get("error").and_then(Value::as_str), Some("queue_full"));
            }
            other => panic!("unexpected status {other}: {doc:?}"),
        }
    }
    assert!(
        rejects >= 1,
        "queue of 2 should reject some of 5 rapid submissions"
    );
    let _ = http::request(&addr, "POST", "/admin/drain", None).unwrap();
    server.join();
}

#[test]
fn tenant_quota_rejects_with_429() {
    let (server, addr, _exec) = start("quota", Duration::from_millis(200), |cfg| {
        cfg.queue_capacity = 64; // queue never binds; only the quota does
        cfg.tenant_quota = 2;
        cfg.pool_ranks = 1;
        cfg.ranks_per_node = 1;
    });
    let mut quota_rejects = 0;
    for i in 0..4 {
        let (status, doc) = submit(&addr, &format!("/data/q{i}.fastq"), "spammer");
        if status == 429 {
            assert_eq!(
                doc.get("error").and_then(Value::as_str),
                Some("tenant_quota")
            );
            quota_rejects += 1;
        }
    }
    assert!(
        quota_rejects >= 1,
        "tenant quota of 2 should cap 4 submissions"
    );
    // A different tenant is unaffected.
    let (status, _) = submit(&addr, "/data/other.fastq", "polite");
    assert_eq!(status, 200);
    let _ = http::request(&addr, "POST", "/admin/drain", None).unwrap();
    server.join();
}

#[test]
fn drain_cancels_queue_interrupts_running_and_leaves_resumable_state() {
    let (server, addr, _exec) = start("drain", Duration::from_secs(30), |cfg| {
        // Single-rank pool: first job runs, second queues.
        cfg.pool_ranks = 1;
        cfg.ranks_per_node = 1;
    });
    let (_, d1) = submit(&addr, "/data/long1.fastq", "alice");
    let (_, d2) = submit(&addr, "/data/long2.fastq", "alice");
    let id1 = d1.get("id").and_then(Value::as_u64).unwrap();
    let id2 = d2.get("id").and_then(Value::as_u64).unwrap();
    // Let the first job start.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, doc) = get_json(&addr, &format!("/v1/jobs/{id1}"));
        if doc.get("status").and_then(Value::as_str) == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, _) = http::request(&addr, "POST", "/admin/drain", None).unwrap();
    assert_eq!(status, 202);
    // New submissions are refused while draining.
    let (status, _) = submit(&addr, "/data/late.fastq", "alice");
    assert_eq!(status, 503);

    let done1 = wait_terminal(&addr, id1, Duration::from_secs(10));
    let done2 = wait_terminal(&addr, id2, Duration::from_secs(10));
    assert_eq!(
        done1.get("status").and_then(Value::as_str),
        Some("interrupted")
    );
    assert_eq!(
        done2.get("status").and_then(Value::as_str),
        Some("cancelled")
    );

    // The interrupted job left a checkpoint manifest: a resubmission on a
    // fresh server resumes rather than starting cold.
    let key = done1
        .get("cache_key")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    server.join();

    let exec2 = Arc::new(MockExecutor::new(Duration::from_millis(20)));
    let cfg2 = ServeConfig {
        // Same state dir as the first server (tmp_state would wipe it, so
        // rebuild the path directly) — the checkpoints must survive.
        state_dir: std::env::temp_dir()
            .join(format!("hipmer-serve-it-drain-{}", std::process::id())),
        pool_ranks: 1,
        ranks_per_node: 1,
        pool_threads: Some(2),
        ..ServeConfig::default()
    };
    let server2 = Server::start(cfg2, exec2.clone() as Arc<dyn JobExecutor>).unwrap();
    let addr2 = server2.addr().to_string();
    let (_, d3) = submit(&addr2, "/data/long1.fastq", "alice");
    let id3 = d3.get("id").and_then(Value::as_u64).unwrap();
    let done3 = wait_terminal(&addr2, id3, Duration::from_secs(10));
    assert_eq!(done3.get("cache").and_then(Value::as_str), Some("resumed"));
    assert_eq!(
        done3.get("cache_key").and_then(Value::as_str),
        Some(key.as_str())
    );
    let _ = http::request(&addr2, "POST", "/admin/drain", None).unwrap();
    server2.join();
}

#[test]
fn loadgen_measures_cache_hit_speedup() {
    let (server, addr, _exec) = start("loadgen", Duration::from_millis(60), |cfg| {
        cfg.queue_capacity = 256;
        cfg.tenant_quota = 256;
    });
    let specs: Vec<JobSpec> = (0..3)
        .map(|i| JobSpec {
            input: format!("/data/lg{i}.fastq"),
            k: 21,
            ranks: 2,
            ranks_per_node: 2,
            rounds: 1,
            metagenome: false,
            tenant: format!("t{}", i % 2),
            priority: 0,
        })
        .collect();
    let report = loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        jobs: 12,
        rate_per_s: 50.0,
        duplicate_fraction: 0.5,
        specs,
        poll_interval: Duration::from_millis(10),
        timeout: Duration::from_secs(30),
    })
    .unwrap();
    assert_eq!(report.completed + report.failed + report.rejected, 12);
    assert!(report.completed >= 6, "{report:?}");
    assert!(report.cache_hits >= 3, "{report:?}");
    assert!(
        report.hit_speedup > 2.0,
        "cache hits should be much faster than 60ms cold runs: {report:?}"
    );
    let _ = http::request(&addr, "POST", "/admin/drain", None).unwrap();
    server.join();
}

#[test]
fn sigterm_triggers_graceful_drain() {
    let (server, addr, _exec) = start("sigterm", Duration::from_secs(30), |cfg| {
        cfg.handle_signals = true;
        cfg.pool_ranks = 1;
        cfg.ranks_per_node = 1;
    });
    let (_, d1) = submit(&addr, "/data/sig.fastq", "alice");
    let id1 = d1.get("id").and_then(Value::as_u64).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, doc) = get_json(&addr, &format!("/v1/jobs/{id1}"));
        if doc.get("status").and_then(Value::as_str) == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    hipmer_serve::signal::raise_self(hipmer_serve::signal::SIGTERM);
    let doc = wait_terminal(&addr, id1, Duration::from_secs(10));
    assert_eq!(
        doc.get("status").and_then(Value::as_str),
        Some("interrupted")
    );
    server.join();
    hipmer_serve::signal::reset();
}
