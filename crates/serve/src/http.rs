//! Minimal hand-rolled HTTP/1.1 — just enough protocol for a local job
//! daemon and its clients (`curl`, the load generator, the tests).
//!
//! Consistent with the repo's vendored-shims policy, this is not a web
//! framework: one request per connection (`Connection: close`), request
//! line + headers + optional `Content-Length` body, and a response writer
//! that always announces its length. Limits are enforced while reading
//! (8 KiB of headers, 8 MiB of body) so a misbehaving client cannot make
//! the daemon buffer unbounded input.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted request-line + header bytes.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum accepted request body bytes.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw query string (text after `?`), empty if none.
    pub query: String,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed; maps onto a 4xx response.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line or headers.
    Bad(&'static str),
    /// Head or body over the hard limits.
    TooLarge(&'static str),
    /// Socket error mid-request.
    Io(io::Error),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Read one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;
    let mut line = String::new();

    let read_line = |reader: &mut BufReader<&mut TcpStream>,
                     line: &mut String,
                     head_bytes: &mut usize|
     -> Result<(), ParseError> {
        line.clear();
        let n = reader.read_line(line)?;
        if n == 0 {
            return Err(ParseError::Bad("connection closed mid-request"));
        }
        *head_bytes += n;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("request head over 8 KiB"));
        }
        Ok(())
    };

    read_line(&mut reader, &mut line, &mut head_bytes)?;
    let mut parts = line.trim_end().splitn(3, ' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(ParseError::Bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(ParseError::Bad("missing request path"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    // Headers: we only interpret Content-Length; everything else is
    // skipped (but still counted against the head limit).
    let mut content_length = 0usize;
    loop {
        read_line(&mut reader, &mut line, &mut head_bytes)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Bad("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge("request body over 8 MiB"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// The reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete response and flush. Always `Connection: close`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A tiny blocking client for the same protocol (the load generator and
/// the tests). Returns `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "closed mid-headers",
            ));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut out = Vec::new();
    match content_length {
        Some(n) => {
            out.resize(n, 0);
            reader.read_exact(&mut out)?;
        }
        None => {
            reader.read_to_end(&mut out)?;
        }
    }
    Ok((status, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trip a raw request through a real socket pair and return what
    /// the server-side parser saw plus the client-visible response.
    fn roundtrip(raw: &[u8]) -> (Result<Request, ParseError>, Vec<u8>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            buf
        });
        let (mut conn, _) = listener.accept().unwrap();
        let parsed = read_request(&mut conn);
        let status = if parsed.is_ok() { 200 } else { 400 };
        write_response(&mut conn, status, "text/plain", b"done").unwrap();
        drop(conn);
        (parsed, client.join().unwrap())
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let (parsed, reply) = roundtrip(
            b"POST /v1/jobs?wait=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        );
        let req = parsed.expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query, "wait=1");
        assert_eq!(req.body, b"{\"a\":1}");
        let reply = String::from_utf8(reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.ends_with("\r\n\r\ndone"), "{reply}");
    }

    #[test]
    fn rejects_malformed_request_line() {
        let (parsed, reply) = roundtrip(b"NOT-HTTP\r\n\r\n");
        assert!(matches!(parsed, Err(ParseError::Bad(_))), "{parsed:?}");
        assert!(String::from_utf8(reply)
            .unwrap()
            .starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn rejects_oversized_head() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n", "y".repeat(10_000)).as_bytes());
        raw.extend_from_slice(b"\r\n");
        let (parsed, _) = roundtrip(&raw);
        assert!(matches!(parsed, Err(ParseError::TooLarge(_))), "{parsed:?}");
    }

    #[test]
    fn client_helper_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.path, "/healthz");
            write_response(&mut conn, 200, "application/json", b"{\"status\":\"ok\"}").unwrap();
        });
        let (status, body) = request(&addr, "GET", "/healthz", None).unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"status\":\"ok\"}");
    }
}
