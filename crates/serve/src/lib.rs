//! `hipmer serve` — a persistent, multi-tenant assembly job service.
//!
//! HipMer's production setting (NERSC) runs assemblies through a batch
//! scheduler; this crate reproduces that operational layer for the
//! simulated runtime: a daemon that accepts assembly jobs over local TCP
//! (hand-rolled HTTP/1.1 + JSON — the build environment is offline, so no
//! web framework), multiplexes them onto one shared
//! [`hipmer_pgas::TeamPool`] of virtual ranks, and answers repeat
//! submissions from a checkpoint-backed result cache.
//!
//! The crate is deliberately **generic over the work**: it depends only on
//! the `hipmer-pgas` runtime and exposes the [`JobExecutor`] trait.
//! The `hipmer` crate implements the trait with the real five-stage
//! pipeline and mounts the server under `hipmer serve`; tests here use a
//! mock executor, which keeps every scheduling/caching/drain policy
//! testable in milliseconds.
//!
//! Module map:
//!
//! * [`http`] — minimal HTTP/1.1 reader/writer + blocking client;
//! * [`job`] — [`job::JobSpec`] / [`job::JobRecord`] and their JSON forms;
//! * [`sched`] — admission control (bounded queue, per-tenant quotas) and
//!   fair-share selection over pool ranks, with anti-starvation;
//! * [`cache`] — the `cache/<key>/` result store with atomic completeness
//!   markers; partial entries resume, complete entries are served as hits;
//! * [`server`] — accept loop, scheduler, workers, drain;
//! * [`signal`] — SIGINT/SIGTERM via a flag-setting handler (no deps);
//! * [`loadgen`] — closed-loop load generator measuring submission-to-
//!   completion latency percentiles and cache-hit speedup.

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod job;
pub mod loadgen;
pub mod sched;
pub mod server;
pub mod signal;

use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use hipmer_pgas::json::Value;
use hipmer_pgas::TeamLease;

pub use job::{CacheDisposition, JobRecord, JobSpec, JobStatus};
pub use server::{ServeConfig, Server};

/// How a job execution ended.
#[derive(Debug)]
pub enum ExecOutcome {
    /// Outputs are in the job's cache directory; `summary` is stored in
    /// the cache completeness marker.
    Completed {
        /// Small JSON document describing the result (e.g. scaffold
        /// counts); recorded in `done.json`.
        summary: Value,
    },
    /// The cancel flag stopped the run at a stage boundary; checkpoints
    /// in the cache directory allow a later submission to resume.
    Interrupted,
    /// The run failed.
    Failed {
        /// Human-readable error.
        error: String,
    },
}

/// The work the server schedules. Implementations run one job on a leased
/// sub-team and write outputs into the job's cache directory.
pub trait JobExecutor: Send + Sync + 'static {
    /// Compute the result-cache key for a spec: a fingerprint of the
    /// input *content* plus every parameter that affects the output.
    /// Errors (e.g. unreadable input) reject the submission with 400.
    fn cache_key(&self, spec: &JobSpec) -> Result<String, String>;

    /// Run the job. `out_dir` is `cache/<key>/` (already created, with a
    /// `checkpoints/` subdirectory); `resume` is true when a valid
    /// checkpoint manifest exists from an earlier interrupted run; the
    /// executor must poll `cancel` and return [`ExecOutcome::Interrupted`]
    /// once it is set, leaving resumable state behind.
    fn execute(
        &self,
        job_id: u64,
        spec: &JobSpec,
        lease: &TeamLease,
        out_dir: &Path,
        resume: bool,
        cancel: &Arc<AtomicBool>,
    ) -> ExecOutcome;
}
