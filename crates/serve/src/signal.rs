//! Process signal handling without external crates.
//!
//! `std` links libc, so binding `signal(2)` and `raise(3)` directly gives
//! us SIGINT/SIGTERM delivery with no new dependencies. The handler does
//! the only thing that is async-signal-safe here: it flips a static
//! `AtomicBool`. Everything else — draining the queue, checkpointing
//! in-flight jobs — happens on normal threads that poll [`triggered`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill; what `systemd` and `kill` send by default).
pub const SIGTERM: i32 = 15;

static TRIGGERED: AtomicBool = AtomicBool::new(false);
static LAST_SIGNAL: AtomicUsize = AtomicUsize::new(0);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

extern "C" fn on_signal(signum: i32) {
    LAST_SIGNAL.store(signum as usize, Ordering::SeqCst);
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Install the flag-setting handler for SIGINT and SIGTERM. Idempotent.
pub fn install() {
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// True once a handled signal has arrived.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// The last handled signal number (0 if none yet).
pub fn last_signal() -> i32 {
    LAST_SIGNAL.load(Ordering::SeqCst) as i32
}

/// Clear the flag (tests; also lets a server instance consume a signal).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
    LAST_SIGNAL.store(0, Ordering::SeqCst);
}

/// Send `signum` to this process (in-process shutdown tests).
pub fn raise_self(signum: i32) {
    unsafe {
        raise(signum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raised_sigterm_sets_the_flag() {
        install();
        reset();
        assert!(!triggered());
        raise_self(SIGTERM);
        // Delivery is synchronous for raise() on the calling thread.
        assert!(triggered());
        assert_eq!(last_signal(), SIGTERM);
        reset();
    }
}
