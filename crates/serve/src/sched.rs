//! Admission control and fair-share job selection.
//!
//! This module is pure bookkeeping — no threads, no I/O — so every policy
//! is unit-testable. The server owns a [`SchedQueue`] behind a mutex and
//! drives it: admit on `POST /v1/jobs`, `pick` from the scheduler thread,
//! `mark_running` / `mark_finished` around execution.
//!
//! Policies, in order of application:
//!
//! 1. **Admission** — reject with a typed reason when the bounded queue is
//!    full, or when one tenant's queued+running jobs would exceed its
//!    quota. Both map to HTTP 429 so clients can back off and retry.
//! 2. **Duplicate suppression** — the server marks a queued job *blocked*
//!    while another job with the same cache key is running; `pick` skips
//!    blocked jobs. When the primary finishes, the duplicate dispatches
//!    and resolves instantly as a cache hit instead of recomputing.
//! 3. **Fair share** — among tenants with an eligible queued job, pick
//!    the tenant currently holding the fewest leased ranks (HipMer's
//!    `Team` pool is the contended resource, so fairness is measured in
//!    ranks, not job counts). Within a tenant: highest priority, then
//!    submission order.
//! 4. **Anti-starvation** — a job passed over `max_starvation_passes`
//!    times is picked unconditionally next, oldest first, so a stream of
//!    high-priority submissions cannot starve a low-priority job forever.

use std::collections::HashMap;

/// Why admission refused a job; both reasons map to HTTP 429.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity.
    QueueFull,
    /// The tenant is at its queued+running quota.
    TenantQuota,
}

impl RejectReason {
    /// Wire name for the JSON error body.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TenantQuota => "tenant_quota",
        }
    }
}

#[derive(Debug)]
struct QueuedJob {
    id: u64,
    tenant: String,
    priority: i64,
    /// Times `pick` chose some other eligible job over this one.
    passes: u64,
    /// True while another running job shares this job's cache key.
    blocked: bool,
}

#[derive(Debug, Default)]
struct TenantShare {
    queued: usize,
    running: usize,
    leased_ranks: usize,
}

/// Scheduler state: the bounded queue plus per-tenant accounting.
#[derive(Debug)]
pub struct SchedQueue {
    queue_capacity: usize,
    tenant_quota: usize,
    max_starvation_passes: u64,
    queued: Vec<QueuedJob>,
    tenants: HashMap<String, TenantShare>,
}

impl SchedQueue {
    /// A queue bounded at `queue_capacity` jobs, with each tenant limited
    /// to `tenant_quota` queued+running jobs, promoting jobs passed over
    /// more than `max_starvation_passes` times.
    pub fn new(queue_capacity: usize, tenant_quota: usize, max_starvation_passes: u64) -> Self {
        SchedQueue {
            queue_capacity,
            tenant_quota,
            max_starvation_passes,
            queued: Vec::new(),
            tenants: HashMap::new(),
        }
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.queued.len()
    }

    /// Total ranks currently leased across all tenants.
    pub fn leased_ranks(&self) -> usize {
        self.tenants.values().map(|t| t.leased_ranks).sum()
    }

    /// Admit a job or reject it with a reason.
    pub fn try_admit(&mut self, id: u64, tenant: &str, priority: i64) -> Result<(), RejectReason> {
        if self.queued.len() >= self.queue_capacity {
            hipmer_pgas::metrics::counter_add("serve/sched/rejected_queue_full", 1);
            return Err(RejectReason::QueueFull);
        }
        let share = self.tenants.entry(tenant.to_string()).or_default();
        if share.queued + share.running >= self.tenant_quota {
            hipmer_pgas::metrics::counter_add("serve/sched/rejected_tenant_quota", 1);
            return Err(RejectReason::TenantQuota);
        }
        share.queued += 1;
        self.queued.push(QueuedJob {
            id,
            tenant: tenant.to_string(),
            priority,
            passes: 0,
            blocked: false,
        });
        hipmer_pgas::metrics::counter_add("serve/sched/admitted", 1);
        hipmer_pgas::metrics::gauge_set("serve/sched/queue_depth", self.queued.len() as f64);
        Ok(())
    }

    /// Mark a queued job (un)blocked by a running job with the same cache
    /// key. No-op if the id is not queued.
    pub fn set_blocked(&mut self, id: u64, blocked: bool) {
        if let Some(j) = self.queued.iter_mut().find(|j| j.id == id) {
            j.blocked = blocked;
        }
    }

    /// Choose and remove the next job to dispatch, or `None` if no queued
    /// job is eligible. Returns `(id, tenant)`.
    pub fn pick(&mut self) -> Option<(u64, String)> {
        let eligible: Vec<usize> = self
            .queued
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.blocked)
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }

        // Anti-starvation first: any job passed over too many times wins,
        // oldest first (queue order is submission order).
        let starved = eligible
            .iter()
            .copied()
            .find(|&i| self.queued[i].passes >= self.max_starvation_passes);

        let chosen = starved.unwrap_or_else(|| {
            *eligible
                .iter()
                .min_by_key(|&&i| {
                    let j = &self.queued[i];
                    let leased = self
                        .tenants
                        .get(&j.tenant)
                        .map(|t| t.leased_ranks)
                        .unwrap_or(0);
                    // min leased ranks, then max priority, then FIFO.
                    (leased, std::cmp::Reverse(j.priority), j.id)
                })
                .expect("eligible is non-empty")
        });

        for &i in &eligible {
            if i != chosen {
                self.queued[i].passes += 1;
            }
        }
        let job = self.queued.remove(chosen);
        if let Some(share) = self.tenants.get_mut(&job.tenant) {
            share.queued = share.queued.saturating_sub(1);
        }
        hipmer_pgas::metrics::gauge_set("serve/sched/queue_depth", self.queued.len() as f64);
        Some((job.id, job.tenant))
    }

    /// Record that a picked job is now running on `ranks` leased ranks.
    pub fn mark_running(&mut self, tenant: &str, ranks: usize) {
        let share = self.tenants.entry(tenant.to_string()).or_default();
        share.running += 1;
        share.leased_ranks += ranks;
    }

    /// Record that a running job released its `ranks`.
    pub fn mark_finished(&mut self, tenant: &str, ranks: usize) {
        if let Some(share) = self.tenants.get_mut(tenant) {
            share.running = share.running.saturating_sub(1);
            share.leased_ranks = share.leased_ranks.saturating_sub(ranks);
        }
    }

    /// Remove every queued job (drain). Returns the cancelled ids.
    pub fn cancel_all_queued(&mut self) -> Vec<u64> {
        let ids: Vec<u64> = self.queued.iter().map(|j| j.id).collect();
        for j in &self.queued {
            if let Some(share) = self.tenants.get_mut(&j.tenant) {
                share.queued = share.queued.saturating_sub(1);
            }
        }
        self.queued.clear();
        hipmer_pgas::metrics::gauge_set("serve/sched/queue_depth", 0.0);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> SchedQueue {
        SchedQueue::new(4, 2, 3)
    }

    #[test]
    fn queue_capacity_rejects_overflow() {
        let mut q = SchedQueue::new(2, 10, 3);
        q.try_admit(1, "a", 0).unwrap();
        q.try_admit(2, "b", 0).unwrap();
        assert_eq!(q.try_admit(3, "c", 0), Err(RejectReason::QueueFull));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn tenant_quota_counts_queued_plus_running() {
        let mut q = queue();
        q.try_admit(1, "a", 0).unwrap();
        let (id, tenant) = q.pick().unwrap();
        assert_eq!(id, 1);
        q.mark_running(&tenant, 4);
        q.try_admit(2, "a", 0).unwrap();
        // 1 running + 1 queued = quota of 2.
        assert_eq!(q.try_admit(3, "a", 0), Err(RejectReason::TenantQuota));
        // Other tenants are unaffected.
        q.try_admit(4, "b", 0).unwrap();
        // Finishing the running job frees quota for one more submission.
        q.mark_finished("a", 4);
        q.try_admit(5, "a", 0).unwrap();
        assert_eq!(q.try_admit(6, "a", 0), Err(RejectReason::TenantQuota));
    }

    #[test]
    fn fair_share_prefers_tenant_with_fewer_leased_ranks() {
        let mut q = queue();
        q.mark_running("a", 8); // tenant a holds 8 ranks
        q.try_admit(1, "a", 100).unwrap(); // high priority but rich tenant
        q.try_admit(2, "b", 0).unwrap(); // poor tenant wins
        assert_eq!(q.pick().unwrap().0, 2);
        assert_eq!(q.pick().unwrap().0, 1);
    }

    #[test]
    fn priority_then_fifo_within_a_tenant() {
        let mut q = SchedQueue::new(8, 8, 100);
        q.try_admit(1, "a", 0).unwrap();
        q.try_admit(2, "a", 5).unwrap();
        q.try_admit(3, "a", 5).unwrap();
        assert_eq!(q.pick().unwrap().0, 2); // highest priority, earliest id
        assert_eq!(q.pick().unwrap().0, 3);
        assert_eq!(q.pick().unwrap().0, 1);
    }

    #[test]
    fn starved_job_is_promoted_after_max_passes() {
        let mut q = SchedQueue::new(16, 16, 2);
        q.try_admit(1, "a", 0).unwrap(); // low priority, submitted first
        q.try_admit(2, "a", 9).unwrap();
        q.try_admit(3, "a", 9).unwrap();
        q.try_admit(4, "a", 9).unwrap();
        assert_eq!(q.pick().unwrap().0, 2); // job 1 passed over (1)
        assert_eq!(q.pick().unwrap().0, 3); // job 1 passed over (2) -> starved
        assert_eq!(q.pick().unwrap().0, 1); // promoted past job 4
        assert_eq!(q.pick().unwrap().0, 4);
    }

    #[test]
    fn blocked_jobs_are_skipped_until_unblocked() {
        let mut q = queue();
        q.try_admit(1, "a", 0).unwrap();
        q.try_admit(2, "b", 0).unwrap();
        q.set_blocked(1, true);
        assert_eq!(q.pick().unwrap().0, 2);
        assert_eq!(q.pick(), None);
        q.set_blocked(1, false);
        assert_eq!(q.pick().unwrap().0, 1);
    }

    #[test]
    fn drain_cancels_everything_queued() {
        let mut q = queue();
        q.try_admit(1, "a", 0).unwrap();
        q.try_admit(2, "b", 0).unwrap();
        assert_eq!(q.cancel_all_queued(), vec![1, 2]);
        assert_eq!(q.depth(), 0);
        // Quota accounting was released.
        q.try_admit(3, "a", 0).unwrap();
        q.try_admit(4, "a", 0).unwrap();
    }
}
