//! The daemon: accept loop, scheduler thread, worker threads, HTTP
//! routing, and graceful drain.
//!
//! Thread structure:
//!
//! * **accept loop** — a nonblocking `TcpListener` polled every ~20 ms so
//!   it can notice shutdown; each accepted connection is handled on its
//!   own short-lived thread (one request per connection).
//! * **scheduler** — wakes on admissions/completions (condvar, with a
//!   20 ms timeout so it also polls OS signals), applies the
//!   [`crate::sched::SchedQueue`] policies, resolves cache hits without
//!   leasing, and spawns a **worker thread** per dispatched job. Rank
//!   leasing uses [`hipmer_pgas::TeamPool::try_lease`]; when the pool
//!   cannot satisfy the request the picked job is held as
//!   `pending_dispatch` and retried on the next wake, which deliberately
//!   creates head-of-line blocking: the fair-share decision stays binding
//!   instead of being bypassed by whichever smaller job fits.
//! * **workers** — run the executor on the leased sub-team, then update
//!   the record, release the lease (via `Drop`), and wake the scheduler.
//!
//! Drain (SIGTERM/SIGINT or `POST /admin/drain`): admission flips to 503,
//! queued jobs become `cancelled`, running jobs get their cancel flag set
//! so the pipeline stops at the next stage boundary (leaving resumable
//! checkpoints), and the scheduler exits once the last worker finishes.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hipmer_pgas::json::Value;
use hipmer_pgas::TeamPool;

use crate::cache::{CacheState, ResultCache};
use crate::http;
use crate::job::{CacheDisposition, JobRecord, JobSpec, JobStatus};
use crate::sched::SchedQueue;
use crate::signal;
use crate::{ExecOutcome, JobExecutor};

/// How often the accept loop and scheduler poll for shutdown/signals.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS choose.
    pub addr: String,
    /// Root for the result cache and any server state.
    pub state_dir: PathBuf,
    /// Bounded queue size; admissions beyond it get 429.
    pub queue_capacity: usize,
    /// Max queued+running jobs per tenant; beyond it 429.
    pub tenant_quota: usize,
    /// Total virtual ranks in the shared [`TeamPool`].
    pub pool_ranks: usize,
    /// Ranks per simulated node for the pool's topology.
    pub ranks_per_node: usize,
    /// OS threads multiplexing the pool (`None` = host parallelism).
    pub pool_threads: Option<usize>,
    /// Scheduler passes before a passed-over job is force-picked.
    pub max_starvation_passes: u64,
    /// React to SIGINT/SIGTERM by draining (disable for in-process tests
    /// that must not install handlers).
    pub handle_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: PathBuf::from("serve-state"),
            queue_capacity: 64,
            tenant_quota: 16,
            pool_ranks: 16,
            ranks_per_node: 8,
            pool_threads: None,
            max_starvation_passes: 8,
            handle_signals: false,
        }
    }
}

/// Counters surfaced at `GET /v1/stats`.
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    interrupted: AtomicU64,
    cache_hits: AtomicU64,
    resumed: AtomicU64,
}

struct Inner {
    jobs: BTreeMap<u64, JobRecord>,
    queue: SchedQueue,
    /// cache key -> id of the job currently running under it.
    running_keys: HashMap<String, u64>,
    /// Job picked by the scheduler but waiting for pool ranks.
    pending_dispatch: Option<u64>,
    /// Cancel flags of running jobs (drain sets them all).
    cancel_flags: HashMap<u64, Arc<AtomicBool>>,
    running: usize,
    workers: Vec<thread::JoinHandle<()>>,
}

struct Shared {
    cfg: ServeConfig,
    executor: Arc<dyn JobExecutor>,
    pool: Arc<TeamPool>,
    cache: ResultCache,
    started: Instant,
    state: Mutex<Inner>,
    wake: Condvar,
    draining: AtomicBool,
    /// Set once the scheduler has fully drained.
    stopped: AtomicBool,
    /// Set by `join` after the scheduler exits; the accept loop then
    /// stops. Kept separate from `stopped` so status endpoints stay
    /// readable between drain completion and `join` (clients may still be
    /// polling for their jobs' terminal state).
    accept_stop: AtomicBool,
    next_id: AtomicU64,
    stats: Stats,
}

impl Shared {
    fn now_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A running daemon; dropping it without [`Server::join`] leaks the
/// threads, so call `join` (it returns once drain completes).
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
    sched_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop and scheduler, and return the handle.
    pub fn start(cfg: ServeConfig, executor: Arc<dyn JobExecutor>) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cache = ResultCache::open(&cfg.state_dir)?;
        let mut pool = TeamPool::new(cfg.pool_ranks, cfg.ranks_per_node);
        if let Some(threads) = cfg.pool_threads {
            pool = pool.with_os_threads(threads);
        }
        if cfg.handle_signals {
            signal::install();
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: SchedQueue::new(
                    cfg.queue_capacity,
                    cfg.tenant_quota,
                    cfg.max_starvation_passes,
                ),
                running_keys: HashMap::new(),
                pending_dispatch: None,
                cancel_flags: HashMap::new(),
                running: 0,
                workers: Vec::new(),
            }),
            cfg,
            executor,
            pool: Arc::new(pool),
            cache,
            started: Instant::now(),
            wake: Condvar::new(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            accept_stop: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            stats: Stats::default(),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        let sched_shared = Arc::clone(&shared);
        let sched_thread = thread::Builder::new()
            .name("serve-sched".into())
            .spawn(move || scheduler_loop(sched_shared))?;

        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            sched_thread: Some(sched_thread),
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Begin a graceful drain (idempotent): stop admitting, cancel the
    /// queue, ask running jobs to stop at the next stage boundary.
    pub fn begin_drain(&self) {
        begin_drain(&self.shared);
    }

    /// True once the scheduler has fully drained.
    pub fn drained(&self) -> bool {
        self.shared.stopped.load(Ordering::SeqCst)
    }

    /// Block until drain completes and both loops have exited.
    pub fn join(mut self) {
        if let Some(t) = self.sched_thread.take() {
            let _ = t.join();
        }
        self.shared.accept_stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn begin_drain(shared: &Arc<Shared>) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    let mut inner = shared.state.lock().unwrap();
    let now = shared.now_s();
    // A job picked but still waiting for pool ranks is queued in spirit:
    // cancel it along with the queue proper.
    let mut doomed = inner.queue.cancel_all_queued();
    doomed.extend(inner.pending_dispatch.take());
    for id in doomed {
        if let Some(rec) = inner.jobs.get_mut(&id) {
            rec.status = JobStatus::Cancelled;
            rec.finished_s = Some(now);
        }
        shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    for flag in inner.cancel_flags.values() {
        flag.store(true, Ordering::SeqCst);
    }
    drop(inner);
    shared.wake.notify_all();
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.accept_stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn scheduler_loop(shared: Arc<Shared>) {
    loop {
        if shared.cfg.handle_signals && signal::triggered() {
            begin_drain(&shared);
        }
        let mut inner = shared.state.lock().unwrap();

        // Exit once drained: nothing queued, pending, or running.
        if shared.draining.load(Ordering::SeqCst)
            && inner.queue.depth() == 0
            && inner.pending_dispatch.is_none()
            && inner.running == 0
        {
            let workers = std::mem::take(&mut inner.workers);
            drop(inner);
            for w in workers {
                let _ = w.join();
            }
            shared.stopped.store(true, Ordering::SeqCst);
            return;
        }

        // Retry a dispatch that was waiting for pool ranks, else pick.
        let candidate = inner.pending_dispatch.take().or_else(|| {
            if shared.draining.load(Ordering::SeqCst) {
                None
            } else {
                inner.queue.pick().map(|(id, _)| id)
            }
        });

        match candidate {
            None => {
                let (guard, _) = shared
                    .wake
                    .wait_timeout(inner, POLL_INTERVAL)
                    .expect("scheduler lock poisoned");
                drop(guard);
            }
            Some(id) => {
                if !try_dispatch(&shared, &mut inner, id) {
                    inner.pending_dispatch = Some(id);
                    let (guard, _) = shared
                        .wake
                        .wait_timeout(inner, POLL_INTERVAL)
                        .expect("scheduler lock poisoned");
                    drop(guard);
                }
            }
        }
    }
}

/// Dispatch job `id`: resolve it as a cache hit, or lease ranks and spawn
/// a worker. Returns false when the pool cannot satisfy the request yet
/// (the caller re-queues it as `pending_dispatch`).
fn try_dispatch(shared: &Arc<Shared>, inner: &mut Inner, id: u64) -> bool {
    let rec = match inner.jobs.get(&id) {
        Some(r) => r.clone(),
        None => return true, // record vanished; drop the dispatch
    };
    // Drain may have cancelled the job between pick and dispatch.
    if rec.status != JobStatus::Queued {
        return true;
    }
    let key = rec.cache_key.clone().expect("cache key set at admission");

    // A completed cache entry satisfies the job without leasing anything.
    if shared.cache.state(&key) == CacheState::Complete {
        let now = shared.now_s();
        let rec = inner.jobs.get_mut(&id).expect("checked above");
        rec.status = JobStatus::Completed;
        rec.cache = CacheDisposition::Hit;
        rec.started_s = Some(now);
        rec.finished_s = Some(now);
        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        hipmer_pgas::metrics::counter_add("serve/cache/hits", 1);
        return true;
    }

    let request = shared.pool.clamp_request(rec.spec.ranks);
    let lease = match shared.pool.try_lease(request) {
        Some(l) => l,
        None => return false,
    };

    let resume = shared.cache.state(&key) == CacheState::Partial;
    if shared.cache.prepare(&key).is_err() {
        // Treat an unwritable state dir as a job failure, not a server
        // crash.
        let now = shared.now_s();
        let rec = inner.jobs.get_mut(&id).expect("checked above");
        rec.status = JobStatus::Failed;
        rec.error = Some("cannot create cache directory".to_string());
        rec.finished_s = Some(now);
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        return true;
    }

    let cancel = Arc::new(AtomicBool::new(false));
    if shared.draining.load(Ordering::SeqCst) {
        cancel.store(true, Ordering::SeqCst);
    }
    let now = shared.now_s();
    {
        let rec = inner.jobs.get_mut(&id).expect("checked above");
        rec.status = JobStatus::Running;
        rec.cache = if resume {
            CacheDisposition::Resumed
        } else {
            CacheDisposition::Miss
        };
        rec.started_s = Some(now);
        rec.leased_ranks = lease.ranks();
    }
    if resume {
        shared.stats.resumed.fetch_add(1, Ordering::Relaxed);
        hipmer_pgas::metrics::counter_add("serve/cache/resumes", 1);
    } else {
        hipmer_pgas::metrics::counter_add("serve/cache/misses", 1);
    }
    inner.queue.mark_running(&rec.spec.tenant, lease.ranks());
    inner.running += 1;
    inner.running_keys.insert(key.clone(), id);
    inner.cancel_flags.insert(id, Arc::clone(&cancel));
    // Queued duplicates wait for this run rather than recomputing.
    let dup_ids: Vec<u64> = inner
        .jobs
        .values()
        .filter(|j| {
            j.id != id && j.status == JobStatus::Queued && j.cache_key.as_deref() == Some(&key)
        })
        .map(|j| j.id)
        .collect();
    for dup in dup_ids {
        inner.queue.set_blocked(dup, true);
    }

    let worker_shared = Arc::clone(shared);
    let spec = rec.spec.clone();
    let out_dir = shared.cache.dir(&key);
    let worker = thread::Builder::new()
        .name(format!("serve-job-{id}"))
        .spawn(move || {
            let outcome = worker_shared
                .executor
                .execute(id, &spec, &lease, &out_dir, resume, &cancel);
            let ranks = lease.ranks();
            drop(lease); // release ranks before taking the state lock
            finish_job(&worker_shared, id, &spec, ranks, outcome);
        });
    match worker {
        Ok(handle) => inner.workers.push(handle),
        Err(_) => {
            // Spawn failure: roll the dispatch back and fail the job.
            let now = shared.now_s();
            let (tenant, leased) = {
                let rec = inner.jobs.get_mut(&id).expect("checked above");
                rec.status = JobStatus::Failed;
                rec.error = Some("worker spawn failed".to_string());
                rec.finished_s = Some(now);
                (rec.spec.tenant.clone(), rec.leased_ranks)
            };
            inner.running -= 1;
            inner.running_keys.remove(&key);
            inner.cancel_flags.remove(&id);
            inner.queue.mark_finished(&tenant, leased);
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    true
}

fn finish_job(shared: &Arc<Shared>, id: u64, spec: &JobSpec, ranks: usize, outcome: ExecOutcome) {
    let mut inner = shared.state.lock().unwrap();
    let now = shared.now_s();
    let key = inner
        .jobs
        .get(&id)
        .and_then(|r| r.cache_key.clone())
        .unwrap_or_default();

    match &outcome {
        ExecOutcome::Completed { summary } => {
            let committed = shared.cache.commit(&key, summary);
            let rec = inner.jobs.get_mut(&id).expect("running job has a record");
            match committed {
                Ok(()) => {
                    rec.status = JobStatus::Completed;
                    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    rec.status = JobStatus::Failed;
                    rec.error = Some(format!("cache commit failed: {e}"));
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            rec.finished_s = Some(now);
        }
        ExecOutcome::Interrupted => {
            let rec = inner.jobs.get_mut(&id).expect("running job has a record");
            rec.status = JobStatus::Interrupted;
            rec.finished_s = Some(now);
            shared.stats.interrupted.fetch_add(1, Ordering::Relaxed);
        }
        ExecOutcome::Failed { error } => {
            let rec = inner.jobs.get_mut(&id).expect("running job has a record");
            rec.status = JobStatus::Failed;
            rec.error = Some(error.clone());
            rec.finished_s = Some(now);
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    inner.running -= 1;
    inner.running_keys.remove(&key);
    inner.cancel_flags.remove(&id);
    inner.queue.mark_finished(&spec.tenant, ranks);
    // Unblock queued duplicates: if we completed they will resolve as
    // cache hits; otherwise one of them becomes the new primary (and will
    // resume from whatever checkpoints this run left).
    let dup_ids: Vec<u64> = inner
        .jobs
        .values()
        .filter(|j| j.status == JobStatus::Queued && j.cache_key.as_deref() == Some(key.as_str()))
        .map(|j| j.id)
        .collect();
    for dup in dup_ids {
        inner.queue.set_blocked(dup, false);
    }
    drop(inner);
    shared.wake.notify_all();
}

fn json_error(reason: &str, detail: &str) -> Vec<u8> {
    let mut v = Value::obj();
    v.set("error", reason).set("detail", detail);
    v.to_json().into_bytes()
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let req = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(http::ParseError::TooLarge(d)) => {
            let _ = http::write_response(
                &mut stream,
                413,
                "application/json",
                &json_error("too_large", d),
            );
            return;
        }
        Err(http::ParseError::Bad(d)) => {
            let _ = http::write_response(
                &mut stream,
                400,
                "application/json",
                &json_error("bad_request", d),
            );
            return;
        }
        Err(http::ParseError::Io(_)) => return,
    };
    let (status, content_type, body) = route(&req, &shared);
    let _ = http::write_response(&mut stream, status, content_type, &body);
}

fn route(req: &http::Request, shared: &Arc<Shared>) -> (u16, &'static str, Vec<u8>) {
    let path: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), path.as_slice()) {
        ("GET", ["healthz"]) => {
            let mut v = Value::obj();
            v.set("status", "ok")
                .set("draining", shared.draining.load(Ordering::SeqCst));
            (200, "application/json", v.to_json().into_bytes())
        }
        ("GET", ["metrics"]) => (
            200,
            "text/plain; version=0.0.4",
            hipmer_pgas::metrics::prometheus_text().into_bytes(),
        ),
        ("GET", ["v1", "stats"]) => (200, "application/json", stats_doc(shared).into_bytes()),
        ("GET", ["v1", "jobs"]) => {
            let inner = shared.state.lock().unwrap();
            let list: Vec<Value> = inner.jobs.values().map(JobRecord::to_value).collect();
            (
                200,
                "application/json",
                Value::Arr(list).to_json().into_bytes(),
            )
        }
        ("GET", ["v1", "jobs", id]) => match lookup_job(shared, id) {
            Some(rec) => (
                200,
                "application/json",
                rec.to_value().to_json().into_bytes(),
            ),
            None => (
                404,
                "application/json",
                json_error("not_found", "no such job"),
            ),
        },
        ("GET", ["v1", "jobs", id, artifact @ ("report" | "fasta" | "trace")]) => {
            serve_artifact(shared, id, artifact)
        }
        ("POST", ["v1", "jobs"]) => submit(shared, &req.body),
        ("POST", ["admin", "drain"]) => {
            begin_drain(shared);
            let mut v = Value::obj();
            v.set("status", "draining");
            (202, "application/json", v.to_json().into_bytes())
        }
        ("GET", _) => (
            404,
            "application/json",
            json_error("not_found", "unknown path"),
        ),
        _ => (
            405,
            "application/json",
            json_error("method_not_allowed", "unsupported method"),
        ),
    }
}

fn lookup_job(shared: &Arc<Shared>, id: &str) -> Option<JobRecord> {
    let id: u64 = id.parse().ok()?;
    shared.state.lock().unwrap().jobs.get(&id).cloned()
}

fn serve_artifact(shared: &Arc<Shared>, id: &str, artifact: &str) -> (u16, &'static str, Vec<u8>) {
    let rec = match lookup_job(shared, id) {
        Some(r) => r,
        None => {
            return (
                404,
                "application/json",
                json_error("not_found", "no such job"),
            )
        }
    };
    if rec.status != JobStatus::Completed {
        return (
            409,
            "application/json",
            json_error("not_ready", rec.status.as_str()),
        );
    }
    let key = rec.cache_key.as_deref().unwrap_or("");
    let (file, content_type) = match artifact {
        "report" => ("report.json", "application/json"),
        "fasta" => ("scaffolds.fasta", "text/plain"),
        "trace" => ("trace.json", "application/json"),
        _ => unreachable!("router only passes known artifacts"),
    };
    match shared.cache.read_output(key, file) {
        Ok(bytes) => (200, content_type, bytes),
        Err(_) => (
            404,
            "application/json",
            json_error("not_found", "artifact missing from cache"),
        ),
    }
}

fn submit(shared: &Arc<Shared>, body: &[u8]) -> (u16, &'static str, Vec<u8>) {
    if shared.draining.load(Ordering::SeqCst) {
        return (
            503,
            "application/json",
            json_error("draining", "server is draining; not admitting jobs"),
        );
    }
    let spec = match JobSpec::from_json(body) {
        Ok(s) => s,
        Err(e) => return (400, "application/json", json_error("bad_spec", &e)),
    };
    let key = match shared.executor.cache_key(&spec) {
        Ok(k) => k,
        Err(e) => return (400, "application/json", json_error("bad_input", &e)),
    };

    let mut inner = shared.state.lock().unwrap();
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    if let Err(reason) = inner.queue.try_admit(id, &spec.tenant, spec.priority) {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return (
            429,
            "application/json",
            json_error(reason.as_str(), "admission refused; retry with backoff"),
        );
    }
    let mut rec = JobRecord::new(id, spec, shared.now_s());
    rec.cache_key = Some(key.clone());
    if inner.running_keys.contains_key(&key) {
        inner.queue.set_blocked(id, true);
    }
    let doc = rec.to_value().to_json().into_bytes();
    inner.jobs.insert(id, rec);
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    hipmer_pgas::metrics::counter_add("serve/jobs/submitted", 1);
    drop(inner);
    shared.wake.notify_all();
    (200, "application/json", doc)
}

fn stats_doc(shared: &Arc<Shared>) -> String {
    let inner = shared.state.lock().unwrap();
    let mut v = Value::obj();
    let s = &shared.stats;
    v.set("submitted", s.submitted.load(Ordering::Relaxed))
        .set("rejected", s.rejected.load(Ordering::Relaxed))
        .set("completed", s.completed.load(Ordering::Relaxed))
        .set("failed", s.failed.load(Ordering::Relaxed))
        .set("cancelled", s.cancelled.load(Ordering::Relaxed))
        .set("interrupted", s.interrupted.load(Ordering::Relaxed))
        .set("cache_hits", s.cache_hits.load(Ordering::Relaxed))
        .set("resumed", s.resumed.load(Ordering::Relaxed))
        .set("queue_depth", inner.queue.depth())
        .set("running", inner.running)
        .set("pool_ranks", shared.pool.total_ranks())
        .set("leased_ranks", shared.pool.leased_ranks())
        .set("draining", shared.draining.load(Ordering::SeqCst))
        .set("uptime_s", shared.now_s());
    v.to_json()
}
