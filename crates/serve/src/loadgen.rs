//! Load generator for the job service.
//!
//! Submits a stream of jobs at a fixed rate over real HTTP, polls them to
//! completion, and reports latency percentiles split by how the cache
//! served each job. Latencies are computed from the **server's own**
//! `submitted_s`/`finished_s` timestamps, so client-side polling cadence
//! does not distort them.
//!
//! Duplicate submissions are interleaved deterministically: with
//! `duplicate_fraction = f`, submission `i` is a duplicate whenever
//! `floor(i*f) > floor((i-1)*f)`, which spreads `round(n*f)` duplicates
//! evenly through the run. A duplicate resubmits a spec already sent, so
//! it exercises either the duplicate-suppression path (primary still
//! running → blocked, then served as a hit) or the result cache proper
//! (primary finished → immediate hit).

use std::io;
use std::thread;
use std::time::{Duration, Instant};

use hipmer_pgas::json::Value;

use crate::http;
use crate::job::JobSpec;

/// Load generator parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total submissions.
    pub jobs: usize,
    /// Submission rate (jobs/second).
    pub rate_per_s: f64,
    /// Fraction of submissions that re-send an earlier spec.
    pub duplicate_fraction: f64,
    /// Distinct cold specs to draw from (cycled).
    pub specs: Vec<JobSpec>,
    /// Poll cadence while waiting for jobs to finish.
    pub poll_interval: Duration,
    /// Give up waiting after this long.
    pub timeout: Duration,
}

/// Measured outcome of one load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Jobs accepted by the server.
    pub submitted: usize,
    /// Jobs rejected with 429.
    pub rejected: usize,
    /// Jobs that reached `completed`.
    pub completed: usize,
    /// Jobs that reached any other terminal state.
    pub failed: usize,
    /// Completed jobs served from the result cache.
    pub cache_hits: usize,
    /// p50 submission→completion latency over all completed jobs (ms).
    pub p50_ms: f64,
    /// p99 submission→completion latency over all completed jobs (ms).
    pub p99_ms: f64,
    /// Completed jobs per second of server-side makespan.
    pub throughput_jobs_s: f64,
    /// p50 latency of cold (miss/resumed) completions (ms).
    pub cold_p50_ms: f64,
    /// p50 latency of cache-hit completions (ms).
    pub hit_p50_ms: f64,
    /// `cold_p50_ms / hit_p50_ms` (0 when either side is empty).
    pub hit_speedup: f64,
}

impl LoadReport {
    /// JSON form for benchmark output.
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj();
        v.set("submitted", self.submitted)
            .set("rejected", self.rejected)
            .set("completed", self.completed)
            .set("failed", self.failed)
            .set("cache_hits", self.cache_hits)
            .set("p50_ms", self.p50_ms)
            .set("p99_ms", self.p99_ms)
            .set("throughput_jobs_s", self.throughput_jobs_s)
            .set("cold_p50_ms", self.cold_p50_ms)
            .set("hit_p50_ms", self.hit_p50_ms)
            .set("hit_speedup", self.hit_speedup);
        v
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// True when submission `i` should duplicate an earlier spec.
fn is_duplicate(i: usize, fraction: f64) -> bool {
    if i == 0 || fraction <= 0.0 {
        return false;
    }
    (i as f64 * fraction).floor() > ((i - 1) as f64 * fraction).floor()
}

/// Run the load: submit, wait, measure.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    assert!(!cfg.specs.is_empty(), "loadgen needs at least one spec");
    let gap = if cfg.rate_per_s > 0.0 {
        Duration::from_secs_f64(1.0 / cfg.rate_per_s)
    } else {
        Duration::ZERO
    };

    let mut accepted_ids: Vec<u64> = Vec::new();
    let mut rejected = 0usize;
    let mut sent_specs: Vec<usize> = Vec::new(); // indices into cfg.specs
    let start = Instant::now();
    let mut next_cold = 0usize;

    for i in 0..cfg.jobs {
        // Pace submissions to the configured rate.
        let due = gap.mul_f64(i as f64);
        let elapsed = start.elapsed();
        if due > elapsed {
            thread::sleep(due - elapsed);
        }

        let spec_idx = if is_duplicate(i, cfg.duplicate_fraction) && !sent_specs.is_empty() {
            // Re-send the spec of an earlier submission, cycling through
            // history so every distinct spec gets duplicated eventually.
            sent_specs[i % sent_specs.len()]
        } else {
            let idx = next_cold % cfg.specs.len();
            next_cold += 1;
            idx
        };
        sent_specs.push(spec_idx);
        let body = cfg.specs[spec_idx].to_value().to_json();
        let (status, reply) = http::request(&cfg.addr, "POST", "/v1/jobs", Some(body.as_bytes()))?;
        match status {
            200 => {
                let doc = Value::parse(std::str::from_utf8(&reply).unwrap_or("{}"))
                    .unwrap_or(Value::Null);
                if let Some(id) = doc.get("id").and_then(Value::as_u64) {
                    accepted_ids.push(id);
                }
            }
            429 | 503 => rejected += 1,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected submit status {other}: {body}"),
                ));
            }
        }
    }

    // Poll every accepted job to a terminal state.
    let deadline = Instant::now() + cfg.timeout;
    let mut terminal: Vec<Value> = Vec::new();
    let mut pending = accepted_ids;
    while !pending.is_empty() {
        if Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("{} jobs still pending at timeout", pending.len()),
            ));
        }
        let mut still = Vec::new();
        for id in pending {
            let (status, reply) = http::request(&cfg.addr, "GET", &format!("/v1/jobs/{id}"), None)?;
            if status != 200 {
                continue; // job vanished; drop from the sample
            }
            let doc =
                Value::parse(std::str::from_utf8(&reply).unwrap_or("{}")).unwrap_or(Value::Null);
            match doc.get("status").and_then(Value::as_str) {
                Some("queued") | Some("running") => still.push(id),
                _ => terminal.push(doc),
            }
        }
        pending = still;
        if !pending.is_empty() {
            thread::sleep(cfg.poll_interval);
        }
    }

    // Server-side latencies, split by cache disposition.
    let mut all_ms: Vec<f64> = Vec::new();
    let mut cold_ms: Vec<f64> = Vec::new();
    let mut hit_ms: Vec<f64> = Vec::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut cache_hits = 0usize;
    let mut first_submit = f64::INFINITY;
    let mut last_finish = 0.0f64;
    for doc in &terminal {
        let status = doc.get("status").and_then(Value::as_str).unwrap_or("");
        if status != "completed" {
            failed += 1;
            continue;
        }
        completed += 1;
        let sub = doc
            .get("submitted_s")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let fin = doc.get("finished_s").and_then(Value::as_f64).unwrap_or(sub);
        first_submit = first_submit.min(sub);
        last_finish = last_finish.max(fin);
        let ms = (fin - sub).max(0.0) * 1e3;
        all_ms.push(ms);
        match doc.get("cache").and_then(Value::as_str) {
            Some("hit") => {
                cache_hits += 1;
                hit_ms.push(ms);
            }
            _ => cold_ms.push(ms),
        }
    }
    all_ms.sort_by(|a, b| a.total_cmp(b));
    cold_ms.sort_by(|a, b| a.total_cmp(b));
    hit_ms.sort_by(|a, b| a.total_cmp(b));

    let makespan = (last_finish - first_submit).max(1e-9);
    let cold_p50 = percentile(&cold_ms, 50.0);
    let hit_p50 = percentile(&hit_ms, 50.0);
    Ok(LoadReport {
        submitted: terminal.len(),
        rejected,
        completed,
        failed,
        cache_hits,
        p50_ms: percentile(&all_ms, 50.0),
        p99_ms: percentile(&all_ms, 99.0),
        throughput_jobs_s: completed as f64 / makespan,
        cold_p50_ms: cold_p50,
        hit_p50_ms: hit_p50,
        hit_speedup: if hit_p50 > 0.0 && cold_p50 > 0.0 {
            cold_p50 / hit_p50
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_schedule_matches_fraction() {
        for &(n, f) in &[(10usize, 0.5f64), (20, 0.25), (8, 0.0), (12, 1.0)] {
            let dups = (0..n).filter(|&i| is_duplicate(i, f)).count();
            let expected = (n as f64 * f).floor() as usize;
            // Off-by-one slack at the boundary; exact elsewhere.
            assert!(
                dups == expected || dups + 1 == expected,
                "n={n} f={f}: got {dups}, expected ~{expected}"
            );
        }
        // No duplicate before anything has been submitted.
        assert!(!is_duplicate(0, 1.0));
    }

    #[test]
    fn percentiles_interpolate_sensibly() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 51.0); // round(0.50 * 99) = 50 -> v[50]
        assert_eq!(percentile(&v, 99.0), 99.0); // round(0.99 * 99) = 98 -> v[98]
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
