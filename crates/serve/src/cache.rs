//! Checkpoint-backed result cache.
//!
//! Every job maps to a **cache key** — a fingerprint of the input bytes
//! plus every parameter that affects the output (computed by the
//! executor, see [`crate::JobExecutor::cache_key`]). The cache is a
//! directory per key under `<state>/cache/`:
//!
//! ```text
//! cache/<key>/
//!   checkpoints/       HMCP stage artifacts (written by the pipeline)
//!   scaffolds.fasta    final assembly       \
//!   report.json        schema-v5 report      } outputs
//!   trace.json         chrome trace         /
//!   done.json          completeness marker, written last (atomically)
//! ```
//!
//! `done.json` is the commit point: it is written via tmp+rename *after*
//! the outputs, so a crash mid-job leaves at worst a directory with valid
//! checkpoints and no marker — which a later submission of the same key
//! treats as a **resume** (restart from the longest valid checkpoint
//! prefix), not a hit. A directory with the marker is a **hit**: the
//! outputs are served without touching the pipeline at all.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use hipmer_pgas::json::Value;

/// What `lookup` found for a key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheState {
    /// Nothing under this key.
    Miss,
    /// Checkpoints exist but no completeness marker: resume candidate.
    Partial,
    /// Marker present: outputs can be served directly.
    Complete,
}

/// Disk-backed result cache rooted at `<state>/cache`.
#[derive(Debug)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) the cache under `state_dir`.
    pub fn open(state_dir: &Path) -> io::Result<ResultCache> {
        let root = state_dir.join("cache");
        fs::create_dir_all(&root)?;
        Ok(ResultCache { root })
    }

    /// Directory for a key (created on demand by `prepare`).
    pub fn dir(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }

    /// Path of the checkpoints subdirectory for a key.
    pub fn checkpoint_dir(&self, key: &str) -> PathBuf {
        self.dir(key).join("checkpoints")
    }

    /// Classify what exists under `key`.
    pub fn state(&self, key: &str) -> CacheState {
        let dir = self.dir(key);
        if dir.join("done.json").is_file() {
            CacheState::Complete
        } else if dir.join("checkpoints").join("manifest.json").is_file() {
            CacheState::Partial
        } else {
            CacheState::Miss
        }
    }

    /// Create the key's directory tree so a job can start writing into it.
    pub fn prepare(&self, key: &str) -> io::Result<PathBuf> {
        let dir = self.dir(key);
        fs::create_dir_all(dir.join("checkpoints"))?;
        Ok(dir)
    }

    /// Commit a key: write `done.json` atomically (tmp + rename) after the
    /// outputs are in place. `summary` is stored verbatim in the marker.
    pub fn commit(&self, key: &str, summary: &Value) -> io::Result<()> {
        let dir = self.dir(key);
        let mut marker = Value::obj();
        marker.set("cache_key", key).set("summary", summary.clone());
        let tmp = dir.join("done.json.tmp");
        fs::write(&tmp, marker.to_json())?;
        fs::rename(&tmp, dir.join("done.json"))
    }

    /// Read a named output file for a complete key.
    pub fn read_output(&self, key: &str, file: &str) -> io::Result<Vec<u8>> {
        fs::read(self.dir(key).join(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hipmer-serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn states_progress_miss_partial_complete() {
        let state = tmp_dir("states");
        let cache = ResultCache::open(&state).unwrap();
        assert_eq!(cache.state("k1"), CacheState::Miss);

        cache.prepare("k1").unwrap();
        // Bare directories (no manifest) still count as a miss: nothing to
        // resume from.
        assert_eq!(cache.state("k1"), CacheState::Miss);

        fs::write(cache.checkpoint_dir("k1").join("manifest.json"), "{}").unwrap();
        assert_eq!(cache.state("k1"), CacheState::Partial);

        fs::write(cache.dir("k1").join("scaffolds.fasta"), ">s\nACGT\n").unwrap();
        cache.commit("k1", &Value::obj()).unwrap();
        assert_eq!(cache.state("k1"), CacheState::Complete);
        assert_eq!(
            cache.read_output("k1", "scaffolds.fasta").unwrap(),
            b">s\nACGT\n"
        );

        let _ = fs::remove_dir_all(&state);
    }

    #[test]
    fn commit_marker_names_the_key() {
        let state = tmp_dir("marker");
        let cache = ResultCache::open(&state).unwrap();
        cache.prepare("deadbeef").unwrap();
        let mut summary = Value::obj();
        summary.set("contigs", 3u64);
        cache.commit("deadbeef", &summary).unwrap();
        let text = fs::read_to_string(cache.dir("deadbeef").join("done.json")).unwrap();
        let v = Value::parse(&text).unwrap();
        assert_eq!(v.get("cache_key").and_then(Value::as_str), Some("deadbeef"));
        assert_eq!(
            v.get("summary")
                .and_then(|s| s.get("contigs"))
                .and_then(Value::as_u64),
            Some(3)
        );
        let _ = fs::remove_dir_all(&state);
    }
}
