//! Job model for the assembly service: what a tenant submits
//! ([`JobSpec`]), how the server tracks it ([`JobRecord`]), and the JSON
//! wire forms of both.
//!
//! Timestamps are seconds since the *server's* start (monotonic), not wall
//! clock: latency math in the load generator subtracts pairs of them, so
//! only differences matter and monotonicity is what we need.

use hipmer_pgas::json::Value;

/// What a tenant submits: the assembly parameters plus scheduling
/// metadata. `input` is a path visible to the daemon (the service is
/// local-only; inputs travel by path, not by upload).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Path to the input reads (FASTQ), as seen by the daemon.
    pub input: String,
    /// k-mer length.
    pub k: usize,
    /// Virtual ranks requested from the shared [`hipmer_pgas::TeamPool`].
    pub ranks: usize,
    /// Virtual ranks per simulated node.
    pub ranks_per_node: usize,
    /// Scaffolding rounds.
    pub rounds: usize,
    /// Use the metagenome preset (iterating k not supported here; this
    /// toggles the preset configuration only).
    pub metagenome: bool,
    /// Tenant identity for quotas and fair-share accounting.
    pub tenant: String,
    /// Larger wins ties within a tenant. Default 0.
    pub priority: i64,
}

impl JobSpec {
    /// Parse a spec from the JSON body of `POST /v1/jobs`.
    ///
    /// Required: `input` (string), `tenant` (string). Everything else has
    /// a default matching the one-shot CLI (`k=21`, `ranks=8`,
    /// `ranks_per_node=4`, `rounds=1`).
    pub fn from_json(body: &[u8]) -> Result<JobSpec, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let v = Value::parse(text).map_err(|e| format!("bad JSON: {e:?}"))?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let num_field = |key: &str, default: usize| -> Result<usize, String> {
            match v.get(key) {
                None => Ok(default),
                Some(n) => n
                    .as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
            }
        };
        let spec = JobSpec {
            input: str_field("input")?,
            k: num_field("k", 21)?,
            ranks: num_field("ranks", 8)?,
            ranks_per_node: num_field("ranks_per_node", 4)?,
            rounds: num_field("rounds", 1)?,
            metagenome: v
                .get("metagenome")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            tenant: str_field("tenant")?,
            priority: v
                .get("priority")
                .and_then(Value::as_f64)
                .map(|p| p as i64)
                .unwrap_or(0),
        };
        if spec.k == 0 || spec.ranks == 0 || spec.ranks_per_node == 0 {
            return Err("k, ranks, and ranks_per_node must be positive".to_string());
        }
        if spec.tenant.is_empty() {
            return Err("tenant must be non-empty".to_string());
        }
        Ok(spec)
    }

    /// The spec as JSON (embedded in job status documents).
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj();
        v.set("input", self.input.as_str())
            .set("k", self.k)
            .set("ranks", self.ranks)
            .set("ranks_per_node", self.ranks_per_node)
            .set("rounds", self.rounds)
            .set("metagenome", self.metagenome)
            .set("tenant", self.tenant.as_str())
            .set("priority", self.priority as f64);
        v
    }
}

/// Lifecycle of a job inside the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for the scheduler.
    Queued,
    /// Executing on a leased sub-team.
    Running,
    /// Finished; outputs are in the cache directory.
    Completed,
    /// Executor reported an error.
    Failed,
    /// Stopped at a stage boundary by drain/shutdown; checkpoints allow a
    /// later resubmission to resume.
    Interrupted,
    /// Removed from the queue before running (drain).
    Cancelled,
}

impl JobStatus {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Interrupted => "interrupted",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// True once the job can never run again in this server instance.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// How the result cache served this job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Not yet dispatched, so not yet known.
    Unknown,
    /// No prior state under this cache key; full run.
    Miss,
    /// Valid checkpoint prefix found; run resumed mid-pipeline.
    Resumed,
    /// Complete cached outputs returned without running the pipeline.
    Hit,
}

impl CacheDisposition {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Unknown => "unknown",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Resumed => "resumed",
            CacheDisposition::Hit => "hit",
        }
    }
}

/// Server-side state of one submitted job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Server-assigned id, dense from 1.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Cache key (content fingerprint + parameters); set at dispatch.
    pub cache_key: Option<String>,
    /// How the cache served this job; set at dispatch/completion.
    pub cache: CacheDisposition,
    /// Error text for `Failed`.
    pub error: Option<String>,
    /// Seconds since server start when the job was admitted.
    pub submitted_s: f64,
    /// Seconds since server start when execution began.
    pub started_s: Option<f64>,
    /// Seconds since server start when the job reached a terminal state.
    pub finished_s: Option<f64>,
    /// Ranks leased while running (0 otherwise).
    pub leased_ranks: usize,
}

impl JobRecord {
    /// A fresh queued record.
    pub fn new(id: u64, spec: JobSpec, submitted_s: f64) -> JobRecord {
        JobRecord {
            id,
            spec,
            status: JobStatus::Queued,
            cache_key: None,
            cache: CacheDisposition::Unknown,
            error: None,
            submitted_s,
            started_s: None,
            finished_s: None,
            leased_ranks: 0,
        }
    }

    /// The job status document served at `GET /v1/jobs/<id>`.
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj();
        v.set("id", self.id)
            .set("status", self.status.as_str())
            .set("cache", self.cache.as_str())
            .set(
                "cache_key",
                self.cache_key
                    .as_deref()
                    .map(Value::from)
                    .unwrap_or(Value::Null),
            )
            .set(
                "error",
                self.error
                    .as_deref()
                    .map(Value::from)
                    .unwrap_or(Value::Null),
            )
            .set("submitted_s", self.submitted_s)
            .set(
                "started_s",
                self.started_s.map(Value::from).unwrap_or(Value::Null),
            )
            .set(
                "finished_s",
                self.finished_s.map(Value::from).unwrap_or(Value::Null),
            )
            .set("leased_ranks", self.leased_ranks)
            .set("spec", self.spec.to_value());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_with_defaults() {
        let spec =
            JobSpec::from_json(br#"{"input": "/data/reads.fastq", "tenant": "alice"}"#).unwrap();
        assert_eq!(spec.input, "/data/reads.fastq");
        assert_eq!(spec.tenant, "alice");
        assert_eq!(spec.k, 21);
        assert_eq!(spec.ranks, 8);
        assert_eq!(spec.ranks_per_node, 4);
        assert_eq!(spec.rounds, 1);
        assert!(!spec.metagenome);
        assert_eq!(spec.priority, 0);
    }

    #[test]
    fn spec_rejects_missing_tenant_and_bad_numbers() {
        assert!(JobSpec::from_json(br#"{"input": "/x"}"#).is_err());
        assert!(JobSpec::from_json(br#"{"input": "/x", "tenant": "t", "k": 0}"#).is_err());
        assert!(JobSpec::from_json(br#"{"input": "/x", "tenant": "t", "ranks": -3}"#).is_err());
        assert!(JobSpec::from_json(b"not json").is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            input: "/data/r.fastq".into(),
            k: 31,
            ranks: 16,
            ranks_per_node: 8,
            rounds: 2,
            metagenome: true,
            tenant: "bob".into(),
            priority: 5,
        };
        let text = spec.to_value().to_json();
        let back = JobSpec::from_json(text.as_bytes()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn record_document_has_wire_fields() {
        let spec = JobSpec::from_json(br#"{"input": "/x", "tenant": "t"}"#).unwrap();
        let mut rec = JobRecord::new(7, spec, 1.5);
        rec.status = JobStatus::Completed;
        rec.cache = CacheDisposition::Hit;
        rec.cache_key = Some("abc123".into());
        rec.started_s = Some(2.0);
        rec.finished_s = Some(2.1);
        let v = rec.to_value();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("completed"));
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("hit"));
        assert_eq!(v.get("cache_key").and_then(Value::as_str), Some("abc123"));
        assert_eq!(v.get("error"), Some(&Value::Null));
        assert_eq!(
            v.get("spec")
                .and_then(|s| s.get("tenant"))
                .and_then(Value::as_str),
            Some("t")
        );
    }
}
