//! Workspace root crate: re-exports for the examples and integration tests.
pub use hipmer;
