//! The communication-avoiding use case of §3.2: assembling *multiple
//! individuals of the same species* (or sweeping k on one individual)
//! with an oracle partitioning function built from the first assembly.
//!
//! ```text
//! cargo run --release --example multi_genome_oracle
//! ```
//!
//! Humans differ by only 0.1–0.4% of base pairs, so the contigs of a
//! first individual predict which k-mers co-travel in every other
//! individual's de Bruijn graph. The oracle maps each contig's k-mers to
//! one rank; traversal lookups then stay local/on-node instead of
//! hammering the network.

use hipmer_contig::{build_graph, build_oracle, build_oracle_for_k, traverse_graph, ContigConfig};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{CostModel, Partitioner, Placement, Team, Topology};
use hipmer_readsim::{
    apply_snps, human_like_dataset, simulate_library, ErrorModel, Genome, Library,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let k = 31;
    let genome_len = 150_000;
    // Concurrency matched to the genome: oracle balance needs contigs to
    // outnumber ranks (the paper's human assembly has millions of contigs
    // on thousands of cores; a 150 kbp genome has hundreds).
    let ranks = 48;
    let topo = Topology::edison(ranks);
    let team = Team::new(topo);
    let model = CostModel::edison();

    // Individual 1: the draft assembly the oracle is built from.
    println!("assembling individual 1 (draft)...");
    let d1 = human_like_dataset(genome_len, 14.0, false, 11);
    let reads1 = d1.all_reads();
    let (spectrum1, _) = analyze_kmers(&team, &reads1, &KmerAnalysisConfig::new(k));
    let cfg = ContigConfig::new(k);
    let (graph1, _) = build_graph(&team, &spectrum1, Placement::Cyclic, Partitioner::Uniform);
    let (contigs1, t1) = traverse_graph(&team, &graph1, &cfg);
    println!(
        "  {} contigs, N50 {}, traversal {:.4} s ({:.1}% off-node lookups)",
        contigs1.len(),
        contigs1.n50(),
        t1.modeled(&model).total(),
        100.0 * t1.offnode_fraction()
    );

    // Build the oracle from those contigs (offline, off the critical path).
    let oracle = Arc::new(build_oracle(
        &contigs1,
        &topo,
        (genome_len * 4).next_power_of_two(),
    ));
    println!(
        "oracle: {} KB replicated per rank, {} collisions",
        oracle.memory_bytes() / 1024,
        oracle.collisions()
    );

    // Individuals 2..4: same species, 0.1-0.4% SNPs each.
    let mut rng = StdRng::seed_from_u64(12);
    for (i, rate) in [(2, 0.001), (3, 0.002), (4, 0.004)] {
        // Each individual is diploid, sharing ~99.8% of both haplotypes
        // with the draft individual.
        let (ha, snps_a) = apply_snps(&d1.genomes[0].haplotypes[0], rate, &mut rng);
        let (hb, snps_b) = apply_snps(&d1.genomes[0].haplotypes[1], rate, &mut rng);
        let snps = snps_a + snps_b;
        let g = Genome {
            name: format!("individual-{i}"),
            haplotypes: vec![ha, hb],
        };
        let reads = simulate_library(&g, &Library::short_insert(14.0), &ErrorModel::perfect(), i);
        let (spectrum, _) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(k));

        // Without the oracle.
        let (graph_a, _) = build_graph(&team, &spectrum, Placement::Cyclic, Partitioner::Uniform);
        let (set_a, trav_a) = traverse_graph(&team, &graph_a, &cfg);
        // With the oracle from individual 1.
        let (graph_b, _) = build_graph(
            &team,
            &spectrum,
            oracle.clone().placement(),
            Partitioner::Uniform,
        );
        let (set_b, trav_b) = traverse_graph(&team, &graph_b, &cfg);

        assert_eq!(
            set_a.contigs.iter().map(|c| &c.seq).collect::<Vec<_>>(),
            set_b.contigs.iter().map(|c| &c.seq).collect::<Vec<_>>(),
            "oracle must not change the assembly"
        );
        let ta = trav_a.modeled(&model).total();
        let tb = trav_b.modeled(&model).total();
        println!(
            "individual {i} ({snps} SNPs): traversal {:.4} s -> {:.4} s with oracle \
             ({:.1}x; off-node {:.1}% -> {:.1}%)",
            ta,
            tb,
            ta / tb,
            100.0 * trav_a.offnode_fraction(),
            100.0 * trav_b.offnode_fraction()
        );
    }
    println!("\n(the oracle was built once from individual 1 and reused unchanged)");

    // Second use case (§3.2): sweeping k on ONE individual. The draft
    // assembly at k=31 seeds an oracle for a k=41 assembly — different
    // k-mers entirely, but extracted from the same draft contigs.
    println!("\n--- k-sweep: oracle from the k={k} draft, applied at k=41 ---");
    let k2 = 41;
    let (spectrum_k2, _) = analyze_kmers(&team, &reads1, &KmerAnalysisConfig::new(k2));
    let cfg2 = ContigConfig::new(k2);
    let (graph_a, _) = build_graph(&team, &spectrum_k2, Placement::Cyclic, Partitioner::Uniform);
    let (set_a, trav_a) = traverse_graph(&team, &graph_a, &cfg2);
    let oracle_k2 = Arc::new(build_oracle_for_k(
        &contigs1,
        &topo,
        (genome_len * 4).next_power_of_two(),
        k2,
    ));
    let (graph_b, _) = build_graph(
        &team,
        &spectrum_k2,
        oracle_k2.placement(),
        Partitioner::Uniform,
    );
    let (set_b, trav_b) = traverse_graph(&team, &graph_b, &cfg2);
    assert_eq!(
        set_a.contigs.iter().map(|c| &c.seq).collect::<Vec<_>>(),
        set_b.contigs.iter().map(|c| &c.seq).collect::<Vec<_>>()
    );
    let ta = trav_a.modeled(&model).total();
    let tb = trav_b.modeled(&model).total();
    println!(
        "k=41 traversal: {:.4} s -> {:.4} s with the k=31-derived oracle          ({:.1}x; off-node {:.1}% -> {:.1}%)",
        ta,
        tb,
        ta / tb,
        100.0 * trav_a.offnode_fraction(),
        100.0 * trav_b.offnode_fraction()
    );
}
