//! Quickstart: assemble a small synthetic genome end-to-end and inspect
//! the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! What it does:
//! 1. simulates a 100 kbp diploid "human-like" genome and a paired-end
//!    read set (with sequencing errors and qualities);
//! 2. writes the reads to a FASTQ file and assembles straight from that
//!    file with [`hipmer::assemble_fastq`] (exercising the §3.3 parallel
//!    block reader);
//! 3. prints assembly statistics, the per-phase modeled times on a
//!    480-core Cray-XC30-like machine, and an accuracy check against the
//!    known source genome.

use hipmer::{assemble_fastq, evaluate, PipelineConfig, StageTimes};
use hipmer_pgas::{CostModel, Team, Topology};
use hipmer_readsim::human_like_dataset;
use hipmer_seqio::write_fastq;

fn main() -> std::io::Result<()> {
    // 1. Simulate.
    let genome_len = 100_000;
    let dataset = human_like_dataset(genome_len, 16.0, true, 2026);
    println!(
        "simulated {} ({} bp diploid), {} reads in {} libraries",
        dataset.name,
        genome_len,
        dataset.all_reads().len(),
        dataset.libraries.len()
    );

    // 2. Write FASTQ and assemble from the file.
    let dir = std::env::temp_dir().join("hipmer-quickstart");
    std::fs::create_dir_all(&dir)?;
    let fastq = dir.join("reads.fastq");
    let mut buf = Vec::new();
    write_fastq(&mut buf, &dataset.all_reads())?;
    std::fs::write(&fastq, &buf)?;
    println!("wrote {} ({} MB)", fastq.display(), buf.len() / 1_000_000);

    let team = Team::new(Topology::edison(480));
    let cfg = PipelineConfig::new(31);
    let assembly = assemble_fastq(&team, &fastq, &cfg)?;

    // 3. Report.
    let s = &assembly.stats;
    println!("\n--- assembly ---");
    println!("reads            : {} ({} bases)", s.n_reads, s.read_bases);
    println!("distinct k-mers  : {}", s.distinct_kmers);
    println!("contigs          : {} (N50 {})", s.n_contigs, s.contig_n50);
    println!(
        "scaffolds        : {} (N50 {})",
        s.n_scaffolds, s.scaffold_n50
    );
    println!(
        "gap closing      : {} spanned, {} walked, {} patched, {} overlap-joined, {} N-filled",
        s.gaps.spanned, s.gaps.walked, s.gaps.patched, s.gaps.overlap_joined, s.gaps.nfilled
    );

    let model = CostModel::edison();
    let t = StageTimes::from_report(&assembly.report, &model);
    println!("\n--- modeled time on 480 Edison-like cores ---");
    println!("file I/O         : {:>9.4} s", t.io);
    println!("k-mer analysis   : {:>9.4} s", t.kmer_analysis);
    println!("contig generation: {:>9.4} s", t.contig_generation);
    println!(
        "scaffolding      : {:>9.4} s  (merAligner {:.4}, gap closing {:.4}, rest {:.4})",
        t.scaffolding(),
        t.meraligner,
        t.gap_closing,
        t.rest_scaffolding
    );
    println!("TOTAL            : {:>9.4} s", t.total());

    // Accuracy vs the known truth (QUAST-style evaluation).
    let refs: Vec<&[u8]> = dataset.genomes[0]
        .haplotypes
        .iter()
        .map(|h| h.as_slice())
        .collect();
    let report = evaluate(&refs, &assembly.scaffolds.sequences, 31);
    println!("\n--- accuracy vs simulated truth (QUAST-style, k-mer anchors) ---");
    println!("{}", report.render());
    println!(
        "(evaluated against BOTH haplotypes: NG50 uses the diploid {}-bp\n \
         denominator, and 'misassembled' scaffolds on a diploid reference\n \
         are haplotype phase switches, not structural errors — see\n \
         tests/end_to_end.rs for the haploid zero-misassembly invariant)",
        2 * genome_len
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
