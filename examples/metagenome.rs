//! Metagenome contig generation (§5.4's Twitchell Wetlands use case).
//!
//! ```text
//! cargo run --release --example metagenome
//! ```
//!
//! Metagenomes break two single-genome assumptions the paper calls out:
//! the k-mer spectrum is flat (few deep k-mers, so Bloom filters save
//! less memory), and single-genome scaffolding logic would mis-join
//! strains — so HipMer runs metagenomes through *contig generation only*
//! ([`PipelineConfig::metagenome_preset`]). This example assembles a
//! simulated lognormal-abundance community and reports per-species
//! recovery: abundant species assemble well, rare ones stay below the
//! count threshold — the paper's point that most reads of a real soil
//! metagenome cannot be assembled without deeper sampling.

use hipmer::{assemble, kmer_containment, PipelineConfig, StageTimes};
use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{CostModel, RankCtx, Team, Topology};
use hipmer_readsim::{human_like_dataset, metagenome_dataset};
use hipmer_sketch::CountHistogram;

fn spectrum_histogram(team: &Team, reads: &[hipmer_seqio::SeqRecord], k: usize) -> CountHistogram {
    let (spectrum, _) = analyze_kmers(team, reads, &KmerAnalysisConfig::new(k));
    let mut hist = CountHistogram::new(256);
    for r in 0..team.ranks() {
        let mut ctx = RankCtx::new(r, *team.topo());
        hist.merge(&spectrum.count_histogram(&mut ctx, 256));
    }
    hist
}

fn main() {
    let total_len = 400_000;
    let species = 50;
    let k = 31;
    let dataset = metagenome_dataset(total_len, species, 12.0, true, 777);
    let reads = dataset.all_reads();
    println!(
        "community: {species} species, {} bp total, {} reads",
        dataset.total_genome_bases(),
        reads.len()
    );

    let ranks = 1024;
    let team = Team::new(Topology::edison(ranks));
    let cfg = PipelineConfig::metagenome_preset(k);
    let lib_range = 0..reads.len();
    let lib_ranges = std::slice::from_ref(&lib_range);
    let assembly = assemble(&team, &reads, lib_ranges, &cfg);

    println!("\n--- contig generation only (scaffolding skipped by design, §5.4) ---");
    println!(
        "distinct k-mers {} | contigs {} | contig N50 {}",
        assembly.stats.distinct_kmers, assembly.stats.n_contigs, assembly.stats.contig_n50
    );
    let t = StageTimes::from_report(&assembly.report, &CostModel::edison());
    println!(
        "modeled on {ranks} cores: k-mer analysis {:.3} s, contig generation {:.3} s",
        t.kmer_analysis, t.contig_generation
    );

    // Spectrum flatness vs an isolate genome at matched coverage.
    let small_team = Team::new(Topology::single_node(8));
    let meta_hist = spectrum_histogram(&small_team, &reads, k);
    let isolate = human_like_dataset(total_len / 4, 12.0, true, 778);
    let iso_hist = spectrum_histogram(&small_team, &isolate.all_reads(), k);
    let low = |h: &CountHistogram| (2..=4u64).map(|v| h.fraction(v)).sum::<f64>();
    println!(
        "\nk-mer spectrum shape (fraction of surviving k-mers at count 2-4):\n  \
         metagenome {:.1}%  vs  isolate genome {:.1}%",
        100.0 * low(&meta_hist),
        100.0 * low(&iso_hist)
    );
    println!("(flat spectra weaken Bloom filtering: the paper saw 36% singleton");
    println!(" k-mers on the wetlands data vs 95% on human)");

    // Per-species recovery vs abundance.
    println!("\n--- per-species genome recovery (k-mer completeness) ---");
    let mut rows: Vec<(String, usize, f64)> = Vec::new();
    for g in &dataset.genomes {
        let (_, completeness) = kmer_containment(g.reference(), &assembly.scaffolds.sequences, k);
        rows.push((g.name.clone(), g.reference_len(), completeness));
    }
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    println!(
        "{:<14} {:>10} {:>14}",
        "species", "size (bp)", "completeness"
    );
    for (name, len, c) in rows.iter().take(8) {
        println!("{:<14} {:>10} {:>13.1}%", name, len, 100.0 * c);
    }
    println!("   ...");
    for (name, len, c) in rows.iter().skip(rows.len().saturating_sub(4)) {
        println!("{:<14} {:>10} {:>13.1}%", name, len, 100.0 * c);
    }
    let recovered = rows.iter().filter(|r| r.2 > 0.5).count();
    println!(
        "\n{recovered}/{species} species >50% recovered; the rest are low-abundance \
         (under-sampled), as in real soil metagenomes"
    );
}
