//! Property-based integration tests over the pipeline's invariants.

use hipmer::{assemble, kmer_containment, PipelineConfig};
use hipmer_pgas::{Team, Topology};
use hipmer_readsim::{human_like, simulate_library, ErrorModel, Genome, Library};
use proptest::prelude::*;

/// Small but structurally varied assemblies must always satisfy the core
/// invariants, whatever the seed/shape.
fn assembly_invariants(genome_len: usize, coverage: f64, seed: u64, ranks: usize) {
    let genome = human_like(genome_len, seed);
    let reads = simulate_library(
        &genome,
        &Library::short_insert(coverage),
        &ErrorModel::perfect(),
        seed ^ 0xabcd,
    );
    let team = Team::new(Topology::new(ranks, 4));
    let cfg = PipelineConfig::new(21);
    let assembly = assemble(&team, &reads, std::slice::from_ref(&(0..reads.len())), &cfg);

    // 1. Scaffold sequences contain only ACGTN.
    for s in &assembly.scaffolds.sequences {
        assert!(hipmer_dna::validate_dna(s).is_ok());
    }
    // 2. Every scaffold's non-N k-mers come from the genome (no invented
    //    sequence with error-free reads).
    let mut reference = genome.haplotypes[0].clone();
    reference.push(b'N');
    reference.extend_from_slice(&genome.haplotypes[1]);
    let (precision, _) = kmer_containment(&reference, &assembly.scaffolds.sequences, 21);
    assert!(
        precision > 0.999,
        "seed {seed}: precision {precision} (invented sequence!)"
    );
    // 3. Stats agree with the structures.
    assert_eq!(
        assembly.stats.n_scaffolds,
        assembly.scaffolds.sequences.len()
    );
    assert_eq!(
        assembly.stats.scaffold_bases,
        assembly.scaffolds.total_bases()
    );
    // 4. Every phase charged at least one unit of work somewhere.
    for phase in &assembly.report.phases {
        let t = phase.totals();
        assert!(
            t.compute_ops + t.total_accesses() + t.barriers > 0,
            "phase {} did nothing",
            phase.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn assembly_invariants_hold(
        seed in 0u64..1000,
        len in 8_000usize..20_000,
        ranks in 1usize..12,
    ) {
        assembly_invariants(len, 16.0, seed, ranks);
    }

    #[test]
    fn scaffold_output_is_topology_independent(
        seed in 0u64..100,
        ranks_a in 1usize..10,
        ranks_b in 10usize..32,
    ) {
        let genome = Genome::haploid(
            "g",
            hipmer_readsim::random_genome(
                10_000,
                0.45,
                &mut rand::SeedableRng::seed_from_u64(seed),
            ),
        );
        let reads = simulate_library(
            &genome,
            &Library::short_insert(16.0),
            &ErrorModel::perfect(),
            seed,
        );
        let cfg = PipelineConfig::new(21);
        let run = |ranks: usize| {
            let team = Team::new(Topology::new(ranks, 4));
            assemble(&team, &reads, std::slice::from_ref(&(0..reads.len())), &cfg).scaffolds.sequences
        };
        prop_assert_eq!(run(ranks_a), run(ranks_b));
    }
}
