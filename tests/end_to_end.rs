//! Cross-crate integration tests: the full assembler driven through its
//! public API, checked against the simulated ground truth.

use hipmer::{assemble, assemble_fastq, kmer_containment, PipelineConfig, StageTimes};
use hipmer_pgas::{CostModel, Team, Topology};
use hipmer_readsim::{human_like_dataset, metagenome_dataset, wheat_scaffolding_dataset, Dataset};
use std::ops::Range;

fn lib_ranges(d: &Dataset) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for lib in &d.reads_per_library {
        out.push(start..start + lib.len());
        start += lib.len();
    }
    out
}

/// Reference sequence: all haplotypes joined with an N separator.
fn reference_of(d: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    for g in &d.genomes {
        for h in &g.haplotypes {
            if !out.is_empty() {
                out.push(b'N');
            }
            out.extend_from_slice(h);
        }
    }
    out
}

#[test]
fn human_like_with_errors_assembles_accurately() {
    let dataset = human_like_dataset(50_000, 20.0, true, 123);
    let team = Team::new(Topology::new(8, 4));
    let reads = dataset.all_reads();
    let assembly = assemble(
        &team,
        &reads,
        &lib_ranges(&dataset),
        &PipelineConfig::new(21),
    );

    let reference = reference_of(&dataset);
    let (precision, completeness) = kmer_containment(&reference, &assembly.scaffolds.sequences, 21);
    assert!(
        precision > 0.97,
        "erroneous sequence leaked into scaffolds: precision {precision}"
    );
    assert!(
        completeness > 0.85,
        "genome lost: completeness {completeness}"
    );
    // Scaffolding must add contiguity beyond raw contigs.
    assert!(assembly.stats.scaffold_n50 >= assembly.stats.contig_n50);
}

#[test]
fn wheat_preset_runs_multiple_rounds_and_improves() {
    let dataset = wheat_scaffolding_dataset(60_000, 16.0, false, 321);
    let team = Team::new(Topology::new(6, 3));
    let reads = dataset.all_reads();
    let one = assemble(&team, &reads, &lib_ranges(&dataset), &{
        let mut c = PipelineConfig::new(21);
        c.scaffold.rounds = 1;
        c
    });
    let four = assemble(
        &team,
        &reads,
        &lib_ranges(&dataset),
        &PipelineConfig::wheat_preset(21),
    );
    assert!(
        four.stats.scaffold_n50 >= one.stats.scaffold_n50,
        "extra rounds must not hurt: {} vs {}",
        four.stats.scaffold_n50,
        one.stats.scaffold_n50
    );
    // Repetitive assembly stays honest: high k-mer precision.
    let reference = reference_of(&dataset);
    let (precision, _) = kmer_containment(&reference, &four.scaffolds.sequences, 21);
    assert!(precision > 0.95, "precision {precision}");
}

#[test]
fn metagenome_recovers_abundant_species_only() {
    let dataset = metagenome_dataset(150_000, 30, 8.0, false, 555);
    let team = Team::new(Topology::new(8, 4));
    let reads = dataset.all_reads();
    let assembly = assemble(
        &team,
        &reads,
        std::slice::from_ref(&(0..reads.len())),
        &PipelineConfig::metagenome_preset(21),
    );
    let mut best = 0.0f64;
    let mut worst = 1.0f64;
    for g in &dataset.genomes {
        let (_, completeness) = kmer_containment(g.reference(), &assembly.scaffolds.sequences, 21);
        best = best.max(completeness);
        worst = worst.min(completeness);
    }
    assert!(
        best > 0.8,
        "the most abundant species must assemble: {best}"
    );
    assert!(
        worst < 0.7,
        "some species must be under-sampled (lognormal abundances): {worst}"
    );
}

#[test]
fn assembly_is_invariant_across_machine_shapes() {
    let dataset = human_like_dataset(25_000, 16.0, true, 99);
    let reads = dataset.all_reads();
    let cfg = PipelineConfig::new(21);
    let run = |ranks: usize, rpn: usize| {
        let team = Team::new(Topology::new(ranks, rpn));
        assemble(&team, &reads, &lib_ranges(&dataset), &cfg)
            .scaffolds
            .sequences
    };
    let a = run(1, 1);
    let b = run(16, 4);
    let c = run(48, 24);
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn file_and_memory_paths_agree() {
    let dataset = human_like_dataset(15_000, 16.0, false, 7);
    let reads = dataset.all_reads();
    let cfg = PipelineConfig::new(21);
    let team = Team::new(Topology::new(4, 2));

    // In-memory (single-library call to match the file path semantics).
    let mem = assemble(&team, &reads, std::slice::from_ref(&(0..reads.len())), &cfg);

    // Through a FASTQ file.
    let dir = std::env::temp_dir().join(format!("hipmer-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("reads.fastq");
    let mut buf = Vec::new();
    hipmer_seqio::write_fastq(&mut buf, &reads).unwrap();
    std::fs::write(&path, &buf).unwrap();
    let filed = assemble_fastq(&team, &path, &cfg).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(mem.scaffolds.sequences, filed.scaffolds.sequences);
    // The file path must additionally price I/O.
    let t = StageTimes::from_report(&filed.report, &CostModel::edison());
    assert!(t.io > 0.0);
}

#[test]
fn modeled_times_strong_scale_on_meaningful_input() {
    // Strong scaling sanity at integration level: 8x the ranks on the
    // same input must cut the modeled end-to-end time. The input must be
    // large enough that per-rank communication still dominates the fixed
    // latency floor at 96 ranks — read-side batching/caching (DESIGN.md
    // §5) cut the per-key latency share, so a smaller genome flattens
    // the modeled curve before the rank sweep ends.
    let dataset = human_like_dataset(200_000, 14.0, false, 31);
    let reads = dataset.all_reads();
    let cfg = PipelineConfig::new(21);
    let time_at = |ranks: usize| {
        let team = Team::new(Topology::edison(ranks));
        let a = assemble(&team, &reads, &lib_ranges(&dataset), &cfg);
        StageTimes::from_report(&a.report, &CostModel::edison()).total()
    };
    let t12 = time_at(12);
    let t96 = time_at(96);
    assert!(
        t96 < t12 * 0.6,
        "8x ranks should speed up meaningfully: {t12} -> {t96}"
    );
}

#[test]
fn haploid_assembly_has_no_misassemblies() {
    // QUAST-style evaluation: with error-free reads from a HAPLOID genome,
    // scaffolds must anchor colinearly to the source — zero
    // relocations/inversions. (Diploid assemblies legitimately switch
    // haplotype phase between bubbles, which single-reference evaluation
    // counts as breaks; see the diploid test below.)
    use hipmer_readsim::{simulate_library, ErrorModel, Genome, Library};
    let genome = Genome::haploid(
        "hap",
        hipmer_readsim::human_like(60_000, 777).haplotypes.remove(0),
    );
    let mut reads = simulate_library(
        &genome,
        &Library::short_insert(16.0),
        &ErrorModel::perfect(),
        1,
    );
    let r2 = simulate_library(
        &genome,
        &Library::long_insert(1000, 4.0),
        &ErrorModel::perfect(),
        2,
    );
    let split = reads.len();
    reads.extend(r2);
    let team = Team::new(Topology::new(8, 4));
    let assembly = assemble(
        &team,
        &reads,
        &[0..split, split..reads.len()],
        &PipelineConfig::new(31),
    );
    let report = hipmer::evaluate(&[genome.reference()], &assembly.scaffolds.sequences, 31);
    assert_eq!(
        report.misassembled_scaffolds, 0,
        "misassemblies on clean haploid data: {report:?}"
    );
    assert!(report.genome_fraction > 0.9, "{report:?}");
    assert!(report.precision > 0.99, "{report:?}");
    assert!(report.duplication_ratio < 1.2, "{report:?}");
}

#[test]
fn diploid_breaks_are_only_phase_switches() {
    // Against the two haplotypes separately, the only chain breaks allowed
    // are haplotype switches (few), not genuine structural errors (which
    // would also tank precision).
    let dataset = human_like_dataset(60_000, 18.0, false, 777);
    let team = Team::new(Topology::new(8, 4));
    let reads = dataset.all_reads();
    let assembly = assemble(
        &team,
        &reads,
        &lib_ranges(&dataset),
        &PipelineConfig::new(31),
    );
    let refs: Vec<&[u8]> = dataset.genomes[0]
        .haplotypes
        .iter()
        .map(|h| h.as_slice())
        .collect();
    let report = hipmer::evaluate(&refs, &assembly.scaffolds.sequences, 31);
    assert!(
        report.misassembled_scaffolds <= report.scaffolds_evaluated / 4,
        "too many breaks for phase switching alone: {report:?}"
    );
    assert!(report.precision > 0.99, "{report:?}");
    assert!(report.genome_fraction > 0.9, "{report:?}");
}
