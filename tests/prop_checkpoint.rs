//! Property-based tests for the checkpoint subsystem: every artifact
//! codec must round-trip arbitrary values exactly, the serialized form
//! must be canonical (re-encoding the decoded value reproduces the same
//! bytes), and a halt/resume cycle through the on-disk store must
//! reproduce the uninterrupted assembly byte for byte.

use hipmer::checkpoint::{
    self, decode_alignments, decode_contigs, decode_scaffold_state, decode_spectrum,
    encode_alignments, encode_contigs, encode_scaffold_state, encode_spectrum, ScaffoldState,
};
use hipmer::{assemble, run_assembly, PipelineConfig, PipelineError, RunOptions};
use hipmer_align::Alignment;
use hipmer_contig::{Contig, ContigSet};
use hipmer_dna::{ExtChoice, ExtensionPair, Kmer, KmerCodec};
use hipmer_kanalysis::{KmerEntry, KmerSpectrum};
use hipmer_pgas::{PartitionScheme, Team, Topology};
use hipmer_readsim::{simulate_library, ErrorModel, Genome, Library};
use hipmer_scaffold::{GapCloseStats, Scaffold, ScaffoldMember, ScaffoldSet};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn ext_of(code: u8) -> ExtChoice {
    match code {
        0..=3 => ExtChoice::Unique(code),
        4 => ExtChoice::Fork,
        _ => ExtChoice::None,
    }
}

fn arb_alignment() -> impl Strategy<Value = Alignment> {
    (
        (0u32..10_000, 0u32..1_000),
        (0u32..50, 50u32..150),
        (0u32..5_000, 0u32..5_000),
        (any::<bool>(), 0u32..150, 100u32..151),
    )
        .prop_map(
            |((read, contig), (rs, re), (cs, ce), (rc, matches, read_len))| Alignment {
                read,
                contig,
                read_start: rs,
                read_end: re,
                contig_start: cs,
                contig_end: ce,
                rc,
                matches,
                read_len,
            },
        )
}

fn arb_seq() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(&b"ACGTN"[..]), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn alignment_codec_round_trips(alns in proptest::collection::vec(arb_alignment(), 0..50)) {
        let bytes = encode_alignments(&alns);
        let back = decode_alignments(&bytes).unwrap();
        prop_assert_eq!(&alns, &back);
        // Canonical: re-encoding reproduces the same bytes.
        prop_assert_eq!(encode_alignments(&back), bytes);
    }

    #[test]
    fn contig_codec_round_trips(
        k in 15usize..32,
        seqs in proptest::collection::vec(arb_seq(), 0..20),
        depths in proptest::collection::vec(0u64..100_000, 20),
    ) {
        let contigs = ContigSet {
            contigs: seqs
                .into_iter()
                .zip(depths)
                .enumerate()
                .map(|(id, (seq, depth))| Contig {
                    id,
                    seq,
                    depth: depth as f64 / 1000.0,
                })
                .collect(),
            codec: KmerCodec::new(k),
        };
        let bytes = encode_contigs(&contigs);
        let back = decode_contigs(&bytes).unwrap();
        prop_assert_eq!(back.codec.k(), k);
        prop_assert_eq!(&back.contigs, &contigs.contigs);
        prop_assert_eq!(encode_contigs(&back), bytes);
    }

    #[test]
    fn spectrum_codec_round_trips(
        raw in proptest::collection::vec((0u64..(1 << 42), 1u32..1000, 0u8..6, 0u8..6), 0..64),
        ranks in 1usize..9,
    ) {
        let topo = Topology::new(ranks, 2);
        // Dedup k-mers through a map (the table keys are unique by
        // construction in the real pipeline).
        let entries: Vec<(Kmer, KmerEntry)> = raw
            .into_iter()
            .map(|(bits, count, left, right)| {
                (
                    bits as u128,
                    KmerEntry {
                        count,
                        exts: ExtensionPair { left: ext_of(left), right: ext_of(right) },
                    },
                )
            })
            .collect::<BTreeMap<u128, KmerEntry>>()
            .into_iter()
            .map(|(bits, e)| (Kmer(bits), e))
            .collect();
        let spectrum = KmerSpectrum::from_entries(topo, 21, PartitionScheme::Uniform, entries);
        let bytes = encode_spectrum(&spectrum);
        // Restore under *both* partition schemes: the artifact is
        // placement-independent, so a spectrum written under uniform
        // ownership must round-trip byte-identically even when restored
        // into a minimizer-bucketed table.
        for scheme in [PartitionScheme::Uniform, PartitionScheme::Minimizer] {
            let back = decode_spectrum(&bytes, topo, scheme).unwrap();
            // Export order is canonical (sorted by packed bits), so the
            // round-tripped spectrum exports the identical entry list and
            // the re-encoded artifact is byte-identical.
            prop_assert_eq!(back.export_entries(), spectrum.export_entries());
            prop_assert_eq!(encode_spectrum(&back), bytes.clone());
        }
    }

    #[test]
    fn scaffold_state_codec_round_trips(
        members in proptest::collection::vec(
            proptest::collection::vec(
                (0u32..500, any::<bool>(), -500i64..500),
                1..6,
            ),
            0..10,
        ),
        seqs in proptest::collection::vec(arb_seq(), 0..10),
        gaps in proptest::collection::vec(0usize..100, 5),
        means in proptest::collection::vec(50_000u64..5_000_000, 0..4),
    ) {
        let state = ScaffoldState {
            scaffolds: ScaffoldSet {
                scaffolds: members
                    .into_iter()
                    .map(|ms| Scaffold {
                        members: ms
                            .into_iter()
                            .map(|(contig, reversed, gap_before)| ScaffoldMember {
                                contig,
                                reversed,
                                gap_before,
                            })
                            .collect(),
                    })
                    .collect(),
                sequences: seqs,
            },
            gap_stats: GapCloseStats {
                overlap_joined: gaps[0],
                spanned: gaps[1],
                walked: gaps[2],
                patched: gaps[3],
                nfilled: gaps[4],
            },
            insert_means: means.into_iter().map(|m| m as f64 / 1000.0).collect(),
        };
        let bytes = encode_scaffold_state(&state);
        let back = decode_scaffold_state(&bytes).unwrap();
        prop_assert_eq!(&back, &state);
        prop_assert_eq!(encode_scaffold_state(&back), bytes);
    }

    #[test]
    fn truncated_artifacts_never_decode(
        alns in proptest::collection::vec(arb_alignment(), 1..10),
        cut in 1usize..20,
    ) {
        let bytes = encode_alignments(&alns);
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(decode_alignments(&bytes[..bytes.len() - cut]).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn halt_resume_reproduces_assembly(
        seed in 0u64..50,
        ranks in 2usize..10,
        halt_stage in proptest::sample::select(&[
            "kmer-analysis",
            "contig-generation",
            "scaffold-prep",
            "alignment",
        ][..]),
    ) {
        let genome = Genome::haploid(
            "g",
            hipmer_readsim::random_genome(
                9_000,
                0.45,
                &mut rand::SeedableRng::seed_from_u64(seed),
            ),
        );
        let reads = simulate_library(
            &genome,
            &Library::short_insert(16.0),
            &ErrorModel::perfect(),
            seed,
        );
        let lib_range = 0..reads.len();
        let ranges = std::slice::from_ref(&lib_range);
        let cfg = PipelineConfig::new(21);
        let team = Team::new(Topology::new(ranks, 4));

        let plain = assemble(&team, &reads, ranges, &cfg);

        let dir = std::env::temp_dir().join(format!(
            "hipmer-prop-ckpt-{}-{seed}-{ranks}-{halt_stage}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let halted = run_assembly(
            &team,
            &reads,
            ranges,
            &cfg,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                halt_after: Some(halt_stage.to_string()),
                ..RunOptions::default()
            },
        );
        prop_assert!(matches!(halted, Err(PipelineError::Halted { .. })));
        let resumed = run_assembly(
            &team,
            &reads,
            ranges,
            &cfg,
            &RunOptions {
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(plain.scaffolds.sequences, resumed.scaffolds.sequences);
        prop_assert!(resumed.report.stage_attempts.iter().any(|a| a.resumed));
    }
}

// FNV-1a must detect any single-byte corruption of an artifact (a
// deterministic check, but driven over arbitrary payloads).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checksum_catches_single_byte_flips(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        at in 0usize..512,
        flip in 1u8..=255,
    ) {
        let at = at % payload.len();
        let mut corrupt = payload.clone();
        corrupt[at] ^= flip;
        prop_assert_ne!(checkpoint::fnv1a(&payload), checkpoint::fnv1a(&corrupt));
    }
}
