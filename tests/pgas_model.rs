//! Integration checks of the PGAS simulator's behavioral claims — the
//! substitution DESIGN.md §1 rests on. These exercise pgas through real
//! pipeline stages rather than unit fixtures.

use hipmer_kanalysis::{analyze_kmers, KmerAnalysisConfig};
use hipmer_pgas::{CostModel, Team, Topology};
use hipmer_readsim::{human_like_dataset, wheat_like_dataset};

#[test]
fn communication_fraction_grows_with_node_count() {
    // Same computation, more nodes -> higher off-node fraction (lookups
    // are uniform over ranks, and fewer of them stay on-node).
    let dataset = human_like_dataset(30_000, 12.0, false, 1);
    let reads = dataset.all_reads();
    let cfg = KmerAnalysisConfig::new(21);
    let offnode_at = |ranks: usize, rpn: usize| {
        let team = Team::new(Topology::new(ranks, rpn));
        let (_, reports) = analyze_kmers(&team, &reads, &cfg);
        let t =
            reports
                .iter()
                .map(|r| r.totals())
                .fold(hipmer_pgas::CommStats::new(), |mut acc, s| {
                    acc.merge(&s);
                    acc
                });
        t.offnode_msgs as f64 / (t.offnode_msgs + t.onnode_msgs).max(1) as f64
    };
    let single_node = offnode_at(24, 24);
    let two_nodes = offnode_at(48, 24);
    let many_nodes = offnode_at(96, 8);
    assert_eq!(single_node, 0.0, "one node has no off-node traffic");
    assert!(two_nodes > 0.3);
    assert!(many_nodes > two_nodes);
}

#[test]
fn heavy_hitter_optimization_pays_off_at_scale_only() {
    // Fig. 6's crossover logic: at low concurrency the default and the
    // heavy-hitter variant are close; at high concurrency the default's
    // hottest rank becomes the critical path.
    let dataset = wheat_like_dataset(400_000, 12.0, false, 2);
    let reads = dataset.all_reads();
    let m = CostModel::edison();
    let time_at = |ranks: usize, hh: bool| {
        let team = Team::new(Topology::edison(ranks));
        let mut cfg = KmerAnalysisConfig::new(21);
        cfg.use_heavy_hitters = hh;
        cfg.theta = 2048; // summary sized to the scaled-down k-mer volume
        let (_, reports) = analyze_kmers(&team, &reads, &cfg);
        reports.iter().map(|r| r.modeled(&m).total()).sum::<f64>()
    };
    // Concurrency window chosen so per-rank data stays in the paper's
    // regime (items per rank >> ranks; the paper runs ~500 Mbase/core).
    let low_default = time_at(24, false);
    let low_hh = time_at(24, true);
    let high_default = time_at(384, false);
    let high_hh = time_at(384, true);
    let low_gain = low_default / low_hh;
    let high_gain = high_default / high_hh;
    assert!(
        high_gain > low_gain,
        "heavy-hitter gain must grow with concurrency: {low_gain:.2} -> {high_gain:.2}"
    );
    assert!(
        high_gain > 1.2,
        "at scale the optimization must win: {high_gain:.2}"
    );
}

#[test]
fn modeled_time_monotone_in_network_cost() {
    let dataset = human_like_dataset(20_000, 12.0, false, 3);
    let reads = dataset.all_reads();
    let team = Team::new(Topology::edison(96));
    let (_, reports) = analyze_kmers(&team, &reads, &KmerAnalysisConfig::new(21));
    let fast_net = CostModel::edison();
    let slow_net = CostModel {
        t_offnode: fast_net.t_offnode * 10.0,
        ..fast_net
    };
    let t_fast: f64 = reports.iter().map(|r| r.modeled(&fast_net).total()).sum();
    let t_slow: f64 = reports.iter().map(|r| r.modeled(&slow_net).total()).sum();
    assert!(t_slow > t_fast, "{t_slow} vs {t_fast}");
}
